//! `GrainService` — the concurrent request/response front door of the
//! selection pipeline.
//!
//! PR 2 made [`SelectionEngine`] the serving substrate, PR 3 made it
//! *multi-tenant*; this revision makes it **concurrent**. A
//! [`GrainService`] is `&self` end to end (`Send + Sync`), so one
//! instance behind an `Arc` serves selection requests from any number of
//! threads. It owns
//!
//! * a **corpus registry**: graphs and feature matrices registered once
//!   under a string id and shared via `Arc` with every engine, and
//! * an [`EnginePool`]: a **sharded** LRU map of warm engines keyed by
//!   `(graph id, artifact fingerprint)` — see
//!   [`GrainConfig::artifact_fingerprint`]. Keys hash onto `N` mutexed
//!   shards, each an independent keyed map with LRU ordering, so
//!   requests for unrelated engines never contend on one lock, and a
//!   slow cold build on one shard cannot block hits on another.
//!
//! Three mechanisms make the concurrency safe *and* cheap:
//!
//! 1. **Per-key build latches.** The first request for a cold key claims
//!    a build latch and constructs the engine *outside* the shard lock;
//!    concurrent requests for the same key wait on the latch and share
//!    the one engine instead of duplicating a half-second build
//!    ([`PoolEvent::JoinedBuild`]). Requests for other keys sail past.
//! 2. **Engine mutexes.** Each pooled engine lives behind its own
//!    `Mutex`, so same-key requests serialize only against each other —
//!    the first one through warms the artifact caches for the rest.
//! 3. **Deterministic parallel artifacts.** The artifact hot paths run
//!    over [`GrainConfig::parallelism`] workers with fixed-order
//!    reductions, so artifacts are bit-identical at any thread count and
//!    `parallelism` stays out of the pool key.
//!
//! [`GrainService::submit_batch`] is the batched entry point: it groups
//! requests by engine key, runs the groups across worker threads (each
//! group lands on its own shard/engine), and runs same-key requests —
//! e.g. a budget sweep — sequentially on the one warm engine.
//!
//! Because the pool key is the *artifact* fingerprint, requests that only
//! differ in greedy-stage fields (`gamma`, `variant`, `algorithm`,
//! `prune`, budget) share one engine and rebuild nothing; requests that
//! differ in artifact fields (kernel, `theta`, `radius`, `influence_eps`)
//! get their own engine so alternating workloads never thrash the
//! single-slot artifact caches. Warm answers are bit-identical to cold
//! one-shot runs — the engine contract (`tests/engine_reuse.rs`) extends
//! to the pool, and `tests/concurrent_service.rs` extends it across
//! threads.

use crate::cancel::{CancelCause, CancelToken, OnDeadline};
use crate::config::{GrainConfig, GrainVariant};
use crate::engine::{ArtifactBytes, EngineStats, SelectionEngine};
use crate::error::{DeadlineStage, GrainError, GrainResult};
use crate::fault;
use crate::selector::{Completion, SelectionOutcome};
use crate::store::{ArtifactStore, ContentAddress, PendingArtifact};
use grain_graph::Graph;
use grain_linalg::{par, DenseMatrix};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, TryLockError};

/// Default total engine capacity of [`GrainService::new`]
/// ([`DEFAULT_POOL_SHARDS`] shards × 2 engines).
pub const DEFAULT_POOL_CAPACITY: usize = 8;

/// Default shard count of [`GrainService::new`].
pub const DEFAULT_POOL_SHARDS: usize = 4;

/// How a request expresses its labeling budget.
#[derive(Clone, Debug, PartialEq)]
pub enum Budget {
    /// Select exactly `n` nodes (clamped to the candidate-pool size).
    Fixed(usize),
    /// Select a fraction of the candidate pool, in `(0, 1]`; resolves to
    /// at least one node.
    Fraction(f64),
    /// A budget sweep: one selection per entry, answered by a single warm
    /// engine (entries clamped to the pool size).
    Sweep(Vec<usize>),
}

impl Budget {
    /// Resolves the budget against a candidate pool of `pool_size` nodes
    /// into the list of concrete budgets to run.
    pub fn resolve(&self, pool_size: usize) -> GrainResult<Vec<usize>> {
        match self {
            Budget::Fixed(n) => Ok(vec![(*n).min(pool_size)]),
            Budget::Fraction(f) => {
                if !(0.0 < *f && *f <= 1.0) {
                    return Err(GrainError::InvalidBudget {
                        message: format!("fraction must lie in (0,1], got {f}"),
                    });
                }
                if pool_size == 0 {
                    return Ok(vec![0]);
                }
                let n = ((*f * pool_size as f64).round() as usize).clamp(1, pool_size);
                Ok(vec![n])
            }
            Budget::Sweep(budgets) => {
                if budgets.is_empty() {
                    return Err(GrainError::InvalidBudget {
                        message: "sweep must name at least one budget".into(),
                    });
                }
                Ok(budgets.iter().map(|&b| b.min(pool_size)).collect())
            }
        }
    }
}

/// A selection request against a registered graph.
///
/// Grain selection is deterministic, so `seed` does not influence the
/// result; it is carried through to the report so mixed workloads that
/// interleave Grain with stochastic baselines can keep one bookkeeping
/// scheme.
#[derive(Clone, Debug)]
pub struct SelectionRequest {
    /// Id of a graph previously passed to [`GrainService::register_graph`].
    pub graph: String,
    /// Full pipeline configuration.
    pub config: GrainConfig,
    /// Labeling budget (fixed, fractional, or a sweep).
    pub budget: Budget,
    /// Candidate pool; `None` selects from all nodes.
    pub candidates: Option<Vec<u32>>,
    /// Per-request override of `config.variant` (Table 3 ablations share
    /// every artifact, so sweeping variants hits one warm engine).
    pub variant: Option<GrainVariant>,
    /// Echoed into the report; see the struct docs.
    pub seed: u64,
}

impl SelectionRequest {
    /// A request selecting from all nodes of `graph` at `budget`.
    #[must_use]
    pub fn new(graph: impl Into<String>, config: GrainConfig, budget: Budget) -> Self {
        Self {
            graph: graph.into(),
            config,
            budget,
            candidates: None,
            variant: None,
            seed: 0,
        }
    }

    /// Restricts selection to an explicit candidate pool (typically the
    /// train partition).
    #[must_use]
    pub fn with_candidates(mut self, candidates: Vec<u32>) -> Self {
        self.candidates = Some(candidates);
        self
    }

    /// Overrides the config's variant for this request only.
    #[must_use]
    pub fn with_variant(mut self, variant: GrainVariant) -> Self {
        self.variant = Some(variant);
        self
    }

    /// Tags the request with a bookkeeping seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The effective configuration after the per-request variant
    /// override.
    pub(crate) fn effective_config(&self) -> GrainConfig {
        let mut config = self.config;
        if let Some(variant) = self.variant {
            config.variant = variant;
        }
        config
    }

    /// The engine-pool key this request routes to:
    /// `(graph id, artifact fingerprint)` of the effective config.
    ///
    /// Requests with equal engine keys are answered by one pooled engine
    /// (warm artifacts); [`GrainService::submit_batch`] groups by this key
    /// and the [`crate::scheduler::Scheduler`] dispatches ready work
    /// grouped by it so each worker lands on a warm engine.
    #[must_use]
    pub fn engine_key(&self) -> (String, String) {
        (
            self.graph.clone(),
            self.effective_config().artifact_fingerprint(),
        )
    }
}

/// What happened in the [`EnginePool`] when a request was routed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolEvent {
    /// A warm engine answered; no engine was constructed.
    Hit,
    /// First time this `(graph, fingerprint)` key was seen; this request
    /// built the engine.
    ColdMiss,
    /// The key had been evicted earlier and its engine was rebuilt — the
    /// signal that the pool capacity is too small for the workload.
    RebuildAfterEviction,
    /// Another request was already building this key's engine; this
    /// request waited on the build latch and shares the one result
    /// instead of duplicating the build.
    JoinedBuild,
    /// The request never reached the pool at all: the
    /// [`crate::scheduler::Scheduler`] recognized it as identical to an
    /// in-flight selection and fanned that selection's report out to it —
    /// the build latch's dedup idea, extended from engine builds to whole
    /// selections.
    CoalescedSelection,
}

/// Aggregate [`EnginePool`] counters (summed across shards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Lookups answered by a pooled engine.
    pub hits: usize,
    /// Lookups that built an engine for a never-seen key.
    pub cold_misses: usize,
    /// Lookups that rebuilt an engine for a previously evicted key.
    pub evicted_rebuilds: usize,
    /// Lookups that waited on another request's in-flight build of the
    /// same key instead of building their own engine.
    pub build_joins: usize,
    /// Engines pushed out by capacity.
    pub evictions: usize,
    /// Engines proactively reclaimed because their corpus epoch fell out
    /// of the retention window ([`GrainService::with_retain_epochs`]):
    /// [`GrainService::apply_update`](crate::streaming) /
    /// [`GrainService::replace_graph`] remove stale-epoch engines
    /// immediately instead of waiting for LRU pressure to age them out.
    pub epoch_reclaims: usize,
    /// Total bytes of artifact state resident across pooled engines, as
    /// of each engine's most recent completed request (a checkout
    /// re-measures its engine when it returns to the pool). Evicted
    /// engines leave the count immediately; an engine mid-build counts
    /// nothing until its first request completes.
    pub resident_bytes: usize,
}

impl PoolStats {
    /// All lookups that had to build an engine.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.cold_misses + self.evicted_rebuilds
    }

    /// Total lookups routed through the pool.
    #[must_use]
    pub fn lookups(&self) -> usize {
        self.hits + self.misses() + self.build_joins
    }
}

/// Live pool counters, kept out of the shard mutexes so reading a stats
/// snapshot — which [`SelectionReport`] does once per request — never
/// touches a shard lock. Increments happen on paths that already hold
/// the relevant shard lock; reads are relaxed atomic loads.
#[derive(Default)]
struct PoolCounters {
    hits: AtomicUsize,
    cold_misses: AtomicUsize,
    evicted_rebuilds: AtomicUsize,
    build_joins: AtomicUsize,
    evictions: AtomicUsize,
    epoch_reclaims: AtomicUsize,
    resident_bytes: AtomicUsize,
}

impl PoolCounters {
    fn bump(counter: &AtomicUsize) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a slot permanently off the residency books (eviction, drop,
    /// clear). Zeroing the slot's own record makes the release idempotent
    /// and keeps a still-checked-out handle from later applying a delta
    /// against a count the pool no longer carries. Callers hold the
    /// slot's shard lock, so the swap cannot race a re-measure.
    fn release_slot(&self, slot: &EngineSlot) {
        let recorded = slot.recorded_bytes.swap(0, Ordering::Relaxed);
        self.resident_bytes.fetch_sub(recorded, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            cold_misses: self.cold_misses.load(Ordering::Relaxed),
            evicted_rebuilds: self.evicted_rebuilds.load(Ordering::Relaxed),
            build_joins: self.build_joins.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            epoch_reclaims: self.epoch_reclaims.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Pool key: one engine per (graph, corpus epoch, artifact fingerprint).
///
/// The epoch versions the *corpus snapshot* an engine was built over:
/// [`crate::streaming::GraphDelta`] application bumps the registered
/// corpus to epoch `e+1`, so engines for epoch `e` become unreachable by
/// new requests (which always key on the current epoch) while requests
/// already holding an old-epoch checkout finish on their consistent
/// snapshot. Old epochs retire through ordinary LRU eviction — stale
/// engines stop being touched and age out.
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub(crate) struct PoolKey {
    pub(crate) graph: String,
    pub(crate) epoch: u64,
    pub(crate) fingerprint: String,
}

/// How many distinct evicted keys **each shard** remembers for
/// classifying a rebuild as [`PoolEvent::RebuildAfterEviction`] rather
/// than a cold miss. The cap is per-shard — a single global cap would let
/// one shard's churn exhaust the whole budget and misclassify every other
/// shard's rebuilds — and bounds the pool's memory in a long-lived
/// service sweeping many artifact fingerprints; once a shard's horizon is
/// full, rebuilds of its older evicted keys are reported as cold misses,
/// a benign misclassification.
const EVICTED_KEY_MEMORY_PER_SHARD: usize = 1024;

/// A pooled engine slot: the per-engine lock that serializes same-key
/// requests, plus the residency record the pool's byte accounting keys
/// off. `recorded_bytes` is the slot's last measured
/// [`SelectionEngine::artifact_bytes`] total **as currently reflected in
/// [`PoolCounters::resident_bytes`]** — re-measures apply the delta, and
/// eviction subtracts exactly what was recorded, so the aggregate never
/// drifts however requests and evictions interleave.
pub(crate) struct EngineSlot {
    pub(crate) engine: Mutex<SelectionEngine>,
    recorded_bytes: AtomicUsize,
}

impl EngineSlot {
    fn new(engine: SelectionEngine) -> Self {
        Self {
            engine: Mutex::new(engine),
            recorded_bytes: AtomicUsize::new(0),
        }
    }
}

/// A pooled engine: shared ownership plus the per-engine lock that
/// serializes same-key requests.
pub(crate) type SharedEngine = Arc<EngineSlot>;

/// One-shot rendezvous for an in-flight engine build: the builder
/// publishes the shared engine (or the build error), every waiter blocks
/// on the condvar until it lands.
#[derive(Default)]
struct BuildLatch {
    slot: Mutex<Option<GrainResult<SharedEngine>>>,
    done: Condvar,
}

impl BuildLatch {
    /// Publishes the build result; the first publication wins (later
    /// calls — e.g. a panic-cleanup guard racing the success path — are
    /// no-ops), and every waiter is woken.
    fn fulfill(&self, result: GrainResult<SharedEngine>) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.done.notify_all();
    }

    /// Blocks until the build result is published and returns it.
    fn wait(&self) -> GrainResult<SharedEngine> {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Removes the claimed build latch and publishes an error if the builder
/// unwinds before publishing a result, so waiters fail fast instead of
/// hanging on a dead latch.
struct BuildGuard<'a> {
    shard: &'a Mutex<Shard>,
    key: PoolKey,
    latch: Arc<BuildLatch>,
    completed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        lock_shard(self.shard).building.remove(&self.key);
        self.latch.fulfill(Err(GrainError::EngineBuildAbandoned {
            graph: self.key.graph.clone(),
        }));
    }
}

/// One pool shard: an independent keyed engine map with LRU ordering,
/// in-flight build latches, and its own eviction memory.
#[derive(Default)]
struct Shard {
    /// Resident engines by key.
    entries: HashMap<PoolKey, SharedEngine>,
    /// Recency order over `entries` keys, most recently used first.
    order: Vec<PoolKey>,
    /// In-flight builds by key.
    building: HashMap<PoolKey, Arc<BuildLatch>>,
    /// Evicted keys, capped at [`EVICTED_KEY_MEMORY_PER_SHARD`].
    evicted: HashSet<PoolKey>,
}

impl Shard {
    /// Moves `key` to the front of the recency order.
    fn touch(&mut self, key: &PoolKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let key = self.order.remove(pos);
            self.order.insert(0, key);
        }
    }

    /// Records an evicted key, up to the per-shard memory cap.
    fn remember_evicted(&mut self, key: PoolKey) {
        if self.evicted.len() < EVICTED_KEY_MEMORY_PER_SHARD {
            self.evicted.insert(key);
        }
    }

    /// Inserts `key` at the MRU position, evicting if the shard is at
    /// `capacity`. Without a byte budget the victim is the LRU engine;
    /// with one ([`EnginePool`] built through
    /// [`GrainService::with_byte_budget`]) the victim is the engine with
    /// the **smallest recorded artifact bytes** — the cheapest to rebuild
    /// — with ties broken toward the LRU end. After the insert, if the
    /// pool-wide resident-byte aggregate still exceeds the budget,
    /// further cheapest-first evictions run until it fits or only the
    /// just-inserted engine remains (which is never evicted by its own
    /// insert, so one over-budget engine can still serve).
    fn insert_mru(
        &mut self,
        key: PoolKey,
        engine: SharedEngine,
        capacity: usize,
        byte_budget: Option<usize>,
        counters: &PoolCounters,
    ) {
        debug_assert!(!self.entries.contains_key(&key));
        if self.entries.len() == capacity {
            self.evict_one(byte_budget.is_some(), None, counters);
        }
        self.order.insert(0, key.clone());
        self.entries.insert(key.clone(), engine);
        if let Some(budget) = byte_budget {
            while self.entries.len() > 1 && counters.resident_bytes.load(Ordering::Relaxed) > budget
            {
                if !self.evict_one(true, Some(&key), counters) {
                    break;
                }
            }
        }
    }

    /// Evicts one engine from this shard and returns whether one was
    /// evicted. `by_bytes` picks the smallest-`recorded_bytes` victim
    /// (scanning from the LRU end so equal-size ties evict the least
    /// recently used); otherwise the LRU tail goes. `protect` exempts one
    /// key (the entry being inserted right now).
    fn evict_one(
        &mut self,
        by_bytes: bool,
        protect: Option<&PoolKey>,
        counters: &PoolCounters,
    ) -> bool {
        let victim_pos = if by_bytes {
            let mut best: Option<(usize, usize)> = None;
            for pos in (0..self.order.len()).rev() {
                let key = &self.order[pos];
                if protect == Some(key) {
                    continue;
                }
                let bytes = self.entries[key].recorded_bytes.load(Ordering::Relaxed);
                if best.map_or(true, |(_, b)| bytes < b) {
                    best = Some((pos, bytes));
                }
            }
            best.map(|(pos, _)| pos)
        } else {
            self.order.len().checked_sub(1)
        };
        let Some(pos) = victim_pos else {
            return false;
        };
        let victim = self.order.remove(pos);
        if let Some(slot) = self.entries.remove(&victim) {
            counters.release_slot(&slot);
        }
        self.remember_evicted(victim);
        PoolCounters::bump(&counters.evictions);
        true
    }

    /// Drops the entry for `key` (both map and recency order).
    fn remove(&mut self, key: &PoolKey) {
        self.entries.remove(key);
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
        }
    }
}

fn lock_shard(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    // A panic inside a shard critical section cannot leave the map
    // half-updated in a way later lookups mis-serve (every mutation is a
    // complete insert/remove), so serving continues after poisoning.
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_engine(engine: &Mutex<SelectionEngine>) -> MutexGuard<'_, SelectionEngine> {
    // Engine artifacts are staged: a panicked request may have built
    // fewer artifacts than it wanted, never a torn one, so the engine
    // stays servable after poisoning.
    engine.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A sharded, concurrently usable map of warm [`SelectionEngine`]s.
///
/// Keys hash onto [`EnginePool::num_shards`] mutexed shards; each shard
/// is an independent keyed map with LRU ordering and capacity
/// [`EnginePool::shard_capacity`], so total capacity is
/// `num_shards × shard_capacity` and eviction pressure on one shard never
/// thrashes another. Recency is tracked per *use*, so a steady mixed
/// workload keeps its hot engines resident. Rebuilds of previously
/// evicted keys are counted separately from cold misses — a rising
/// [`PoolStats::evicted_rebuilds`] is the capacity-tuning signal — with
/// the eviction memory capped per shard (`EVICTED_KEY_MEMORY_PER_SHARD`).
///
/// Cold builds run *outside* the shard lock under a per-key build latch:
/// concurrent requests for the same cold key build the engine exactly
/// once ([`PoolEvent::JoinedBuild`] for the waiters), and requests for
/// other keys on the same shard are blocked only for the latch
/// bookkeeping, never for the build itself.
pub struct EnginePool {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    /// When set, eviction is cost-weighted: the victim is the engine with
    /// the smallest recorded artifact bytes (cheapest to rebuild) rather
    /// than the LRU entry, and inserts additionally evict until the
    /// pool-wide [`PoolStats::resident_bytes`] fits the budget. See
    /// [`GrainService::with_byte_budget`].
    byte_budget: Option<usize>,
    counters: PoolCounters,
}

impl EnginePool {
    /// A single-shard pool keeping up to `capacity` warm engines
    /// (minimum 1) — one global LRU order, the deterministic choice for
    /// capacity-sensitive tests and single-threaded embedders.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::sharded(1, capacity)
    }

    /// A pool of `shards` independent LRU shards, each keeping up to
    /// `shard_capacity` warm engines (both minimum 1).
    #[must_use]
    pub fn sharded(shards: usize, shard_capacity: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            shard_capacity: shard_capacity.max(1),
            byte_budget: None,
            counters: PoolCounters::default(),
        }
    }

    /// The resident-byte budget, if one is set.
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }

    pub(crate) fn set_byte_budget(&mut self, bytes: usize) {
        self.byte_budget = Some(bytes);
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Maximum resident engines per shard.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// Maximum number of resident engines across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shard_capacity
    }

    /// Number of engines currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).entries.len())
            .sum()
    }

    /// True if no engine is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters. A lock-free snapshot of relaxed atomics —
    /// reading it (which every [`SelectionReport`] does) never contends
    /// with requests on any shard.
    pub fn stats(&self) -> PoolStats {
        self.counters.snapshot()
    }

    /// Resident `(graph, epoch, fingerprint)` keys, shard-major, most
    /// recently used first within each shard.
    pub fn keys(&self) -> Vec<(String, u64, String)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = lock_shard(shard);
            out.extend(
                shard
                    .order
                    .iter()
                    .map(|k| (k.graph.clone(), k.epoch, k.fingerprint.clone())),
            );
        }
        out
    }

    /// Snapshot of the resident keys serving `(graph, epoch)` — the set
    /// of engines a [`crate::streaming::GraphDelta`] application migrates
    /// to the next epoch. A snapshot, not a lock: engines built or
    /// evicted after it are handled by the cold path (they rebuild over
    /// the new corpus).
    pub(crate) fn resident_keys_for(&self, graph: &str, epoch: u64) -> Vec<PoolKey> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = lock_shard(shard);
            out.extend(
                shard
                    .entries
                    .keys()
                    .filter(|k| k.graph == graph && k.epoch == epoch)
                    .cloned(),
            );
        }
        out
    }

    /// The resident slot under `key`, if any (no recency touch).
    pub(crate) fn get_slot(&self, key: &PoolKey) -> Option<SharedEngine> {
        let shard = lock_shard(&self.shards[self.shard_of(key)]);
        shard.entries.get(key).cloned()
    }

    /// Inserts a ready-made engine under `key` at the MRU position,
    /// unless a resident engine already claimed the key (the resident —
    /// necessarily fresher — wins and the offered engine is dropped).
    /// Used by epoch migration to park patched engines under their
    /// next-epoch key.
    pub(crate) fn insert_ready(&self, key: PoolKey, engine: SelectionEngine) {
        let bytes = engine.artifact_bytes().total();
        let slot = Arc::new(EngineSlot::new(engine));
        let mut shard = lock_shard(&self.shards[self.shard_of(&key)]);
        if shard.entries.contains_key(&key) {
            return;
        }
        shard.insert_mru(
            key.clone(),
            Arc::clone(&slot),
            self.shard_capacity,
            self.byte_budget,
            &self.counters,
        );
        drop(shard);
        self.record_bytes(&key, &slot, bytes);
    }

    /// Removes every resident engine serving `graph` at an epoch older
    /// than `min_keep_epoch` and returns how many were reclaimed. The
    /// epoch-retention policy ([`GrainService::with_retain_epochs`])
    /// calls this after a corpus update so stale engines release their
    /// memory immediately instead of squatting in the LRU order until
    /// capacity pressure ages them out. Requests still holding a
    /// checkout of a reclaimed engine finish normally on their `Arc`;
    /// reclamation only unmaps the pool entry.
    pub(crate) fn reclaim_stale_epochs(&self, graph: &str, min_keep_epoch: u64) -> usize {
        let mut reclaimed = 0;
        for shard in &self.shards {
            let mut shard = lock_shard(shard);
            let stale: Vec<PoolKey> = shard
                .entries
                .keys()
                .filter(|k| k.graph == graph && k.epoch < min_keep_epoch)
                .cloned()
                .collect();
            for key in stale {
                if let Some(slot) = shard.entries.remove(&key) {
                    self.counters.release_slot(&slot);
                }
                if let Some(pos) = shard.order.iter().position(|k| k == &key) {
                    shard.order.remove(pos);
                }
                shard.remember_evicted(key);
                PoolCounters::bump(&self.counters.epoch_reclaims);
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Drops every resident engine (counters are kept, evicted keys are
    /// remembered).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = lock_shard(shard);
            shard.order.clear();
            let dropped: Vec<(PoolKey, SharedEngine)> = shard.entries.drain().collect();
            for (key, slot) in dropped {
                self.counters.release_slot(&slot);
                shard.remember_evicted(key);
            }
        }
    }

    fn shard_of(&self, key: &PoolKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// The cached `X^(k)` under `kernel` from any resident engine serving
    /// `graph` at corpus `epoch`, if one holds it *and* is not busy.
    /// Engines are keyed by the full artifact fingerprint (kernel, θ, ε,
    /// r), but `X^(k)` depends on the kernel alone — a new engine for
    /// another fingerprint of the same graph **and epoch** seeds from a
    /// sibling instead of re-propagating. The epoch filter is what keeps
    /// a post-update build from adopting a pre-update `X^(k)`.
    /// Busy siblings are skipped (`try_lock`), trading an occasional
    /// re-propagation for never blocking a build on a foreign request.
    fn cached_propagation(
        &self,
        graph: &str,
        epoch: u64,
        kernel: grain_prop::Kernel,
    ) -> Option<Arc<DenseMatrix>> {
        for shard in &self.shards {
            let candidates: Vec<SharedEngine> = {
                let shard = lock_shard(shard);
                shard
                    .entries
                    .iter()
                    .filter(|(key, _)| key.graph == graph && key.epoch == epoch)
                    .map(|(_, engine)| Arc::clone(engine))
                    .collect()
            };
            for slot in candidates {
                let found = match slot.engine.try_lock() {
                    Ok(engine) => engine.propagated_if_cached(kernel),
                    Err(TryLockError::Poisoned(poisoned)) => {
                        poisoned.into_inner().propagated_if_cached(kernel)
                    }
                    Err(TryLockError::WouldBlock) => None,
                };
                if found.is_some() {
                    return found;
                }
            }
        }
        None
    }

    /// Re-indexes an engine a checkout re-keyed through its `&mut` handle
    /// ([`SelectionEngine::set_config`] with an artifact-field change):
    /// the entry moves from `old_key`'s shard to the shard of the
    /// engine's actual fingerprint, so a lookup never serves wrong-keyed
    /// caches. When re-homing collides with a resident engine under the
    /// new key, the re-keyed engine is dropped and counted as an
    /// eviction.
    fn rehome(&self, old_key: &PoolKey, engine: &SharedEngine, new_fingerprint: String) {
        let new_key = PoolKey {
            graph: old_key.graph.clone(),
            epoch: old_key.epoch,
            fingerprint: new_fingerprint,
        };
        let old_idx = self.shard_of(old_key);
        let new_idx = self.shard_of(&new_key);
        // Lock shards in index order — this is the only path that holds
        // two shard locks, so a consistent order rules out deadlock.
        let (mut old_shard, mut new_shard) = if old_idx == new_idx {
            (lock_shard(&self.shards[old_idx]), None)
        } else {
            let (first, second) = (old_idx.min(new_idx), old_idx.max(new_idx));
            let first_guard = lock_shard(&self.shards[first]);
            let second_guard = lock_shard(&self.shards[second]);
            if old_idx < new_idx {
                (first_guard, Some(second_guard))
            } else {
                (second_guard, Some(first_guard))
            }
        };
        let was_resident = old_shard
            .entries
            .get(old_key)
            .is_some_and(|resident| Arc::ptr_eq(resident, engine));
        if !was_resident {
            return; // already re-homed by another checkout, or evicted
        }
        old_shard.remove(old_key);
        let target = new_shard.as_mut().unwrap_or(&mut old_shard);
        if target.entries.contains_key(&new_key) {
            // The new key already has a (more recently built) engine;
            // the re-keyed one is surplus.
            self.counters.release_slot(engine);
            PoolCounters::bump(&self.counters.evictions);
        } else {
            target.insert_mru(
                new_key,
                Arc::clone(engine),
                self.shard_capacity,
                self.byte_budget,
                &self.counters,
            );
        }
    }

    /// Re-measures a slot's resident artifact bytes into the aggregate.
    /// Applied only while the slot is still pooled under `key`: a slot
    /// evicted while checked out was already taken off the books by
    /// [`PoolCounters::release_slot`] and must stay off. Taking the shard
    /// lock orders the re-measure against eviction and re-homing, so the
    /// aggregate cannot drift however the two interleave.
    fn record_bytes(&self, key: &PoolKey, slot: &SharedEngine, total: usize) {
        let shard = lock_shard(&self.shards[self.shard_of(key)]);
        let resident = shard
            .entries
            .get(key)
            .is_some_and(|pooled| Arc::ptr_eq(pooled, slot));
        if resident {
            let old = slot.recorded_bytes.swap(total, Ordering::Relaxed);
            self.counters
                .resident_bytes
                .fetch_add(total.wrapping_sub(old), Ordering::Relaxed);
        }
    }

    fn get_or_build(
        &self,
        key: PoolKey,
        build: impl FnOnce() -> GrainResult<SelectionEngine>,
    ) -> GrainResult<(SharedEngine, PoolEvent)> {
        enum Claim {
            Hit(SharedEngine),
            Join(Arc<BuildLatch>),
            Build {
                latch: Arc<BuildLatch>,
                rebuilds_evicted: bool,
            },
        }
        let shard_mutex = &self.shards[self.shard_of(&key)];
        let claim = {
            let mut shard = lock_shard(shard_mutex);
            if let Some(engine) = shard.entries.get(&key).cloned() {
                shard.touch(&key);
                PoolCounters::bump(&self.counters.hits);
                Claim::Hit(engine)
            } else if let Some(latch) = shard.building.get(&key).cloned() {
                PoolCounters::bump(&self.counters.build_joins);
                Claim::Join(latch)
            } else {
                let latch = Arc::new(BuildLatch::default());
                shard.building.insert(key.clone(), Arc::clone(&latch));
                Claim::Build {
                    rebuilds_evicted: shard.evicted.contains(&key),
                    latch,
                }
            }
        };
        match claim {
            Claim::Hit(engine) => Ok((engine, PoolEvent::Hit)),
            Claim::Join(latch) => latch.wait().map(|e| (e, PoolEvent::JoinedBuild)),
            Claim::Build {
                latch,
                rebuilds_evicted,
            } => {
                let mut guard = BuildGuard {
                    shard: shard_mutex,
                    key: key.clone(),
                    latch: Arc::clone(&latch),
                    completed: false,
                };
                // The expensive part runs with no lock held: other keys
                // on this shard stay fully servable meanwhile.
                let built = build().map(|engine| Arc::new(EngineSlot::new(engine)));
                let result = {
                    let mut shard = lock_shard(shard_mutex);
                    shard.building.remove(&key);
                    match built {
                        Ok(engine) => {
                            if let Some(resident) = shard.entries.get(&key).cloned() {
                                // A concurrent rehome parked a re-keyed
                                // engine under this key while we were
                                // building: the resident engine (warm
                                // artifacts) wins, our fresh build is
                                // surplus and simply dropped.
                                shard.touch(&key);
                                PoolCounters::bump(&self.counters.hits);
                                Ok((resident, PoolEvent::Hit))
                            } else {
                                let event = if rebuilds_evicted {
                                    PoolCounters::bump(&self.counters.evicted_rebuilds);
                                    shard.evicted.remove(&key);
                                    PoolEvent::RebuildAfterEviction
                                } else {
                                    PoolCounters::bump(&self.counters.cold_misses);
                                    PoolEvent::ColdMiss
                                };
                                shard.insert_mru(
                                    key,
                                    Arc::clone(&engine),
                                    self.shard_capacity,
                                    self.byte_budget,
                                    &self.counters,
                                );
                                Ok((engine, event))
                            }
                        }
                        Err(e) => Err(e),
                    }
                };
                match &result {
                    Ok((engine, _)) => latch.fulfill(Ok(Arc::clone(engine))),
                    Err(e) => latch.fulfill(Err(e.clone())),
                }
                guard.completed = true;
                result
            }
        }
    }
}

/// A pooled engine checked out of a [`GrainService`] for the duration of
/// a caller's work — the concurrent replacement for the old
/// `&mut SelectionEngine` handle.
///
/// [`EngineCheckout::lock`] grants exclusive access to the engine;
/// callers that sweep configurations should apply
/// [`SelectionEngine::set_config`] and run their selections under **one**
/// lock session, so a concurrent request cannot interleave a different
/// greedy-stage configuration.
///
/// Dropping the checkout re-indexes the pool if the caller re-keyed the
/// engine to a different artifact fingerprint via `set_config`, so
/// wrong-keyed caches are never served.
pub struct EngineCheckout<'a> {
    pool: &'a EnginePool,
    key: PoolKey,
    engine: SharedEngine,
}

impl EngineCheckout<'_> {
    /// Locks the pooled engine for exclusive use. Same-key requests block
    /// until the guard drops; unrelated keys are unaffected.
    pub fn lock(&self) -> MutexGuard<'_, SelectionEngine> {
        lock_engine(&self.engine.engine)
    }
}

impl Drop for EngineCheckout<'_> {
    fn drop(&mut self) {
        let measured = match self.engine.engine.try_lock() {
            Ok(engine) => Some((
                engine.config().artifact_fingerprint(),
                engine.artifact_bytes().total(),
            )),
            Err(TryLockError::Poisoned(poisoned)) => {
                let engine = poisoned.into_inner();
                Some((
                    engine.config().artifact_fingerprint(),
                    engine.artifact_bytes().total(),
                ))
            }
            // The engine is busy (another checkout, or a transient
            // sibling-X^(k) probe). Skipping is safe: a concurrent
            // checkout's drop re-homes and re-measures, and even if a
            // re-keyed engine briefly stays under its old key, artifacts
            // are internally keyed by their own config fields and the
            // next hit's `set_config` re-aligns the engine — never a
            // wrong answer, at worst one duplicate build.
            Err(TryLockError::WouldBlock) => None,
        };
        let Some((fingerprint, bytes)) = measured else {
            return;
        };
        self.pool.record_bytes(&self.key, &self.engine, bytes);
        if fingerprint != self.key.fingerprint {
            self.pool.rehome(&self.key, &self.engine, fingerprint);
        }
    }
}

/// Answer to a [`SelectionRequest`]: the selections plus the cache
/// observability of the request.
#[derive(Clone, Debug)]
pub struct SelectionReport {
    /// The graph the request ran against.
    pub graph: String,
    /// The request's bookkeeping seed, echoed.
    pub seed: u64,
    /// Concrete budgets after [`Budget::resolve`], in execution order.
    pub budgets: Vec<usize>,
    /// One outcome per budget (selection, σ, objective trace, per-stage
    /// timings, greedy evaluation counts).
    pub outcomes: Vec<SelectionOutcome>,
    /// What the engine pool did for this request.
    pub pool_event: PoolEvent,
    /// Artifact (re)builds this request triggered — the cache hit/miss
    /// breakdown per pipeline stage; all-zero build counters mean the
    /// request was answered entirely from warm artifacts.
    pub artifact_builds: EngineStats,
    /// Resident bytes of every artifact class the answering engine holds
    /// after this request — warm or newly built. The influence-rows
    /// entry also reports what the retired nested `Vec<Vec<…>>` layout
    /// would have occupied, so the flat-CSR saving is observable per
    /// request ([`ArtifactBytes`]).
    pub artifact_bytes: ArtifactBytes,
    /// Pool counters after the request.
    pub pool_stats: PoolStats,
    /// Whether the request ran to completion or degraded to an anytime
    /// prefix under [`OnDeadline::Partial`] — either the last outcome is
    /// itself a cancelled-mid-greedy prefix, or a sweep was truncated
    /// between budgets. [`GrainService::select`] always reports
    /// [`Completion::Complete`].
    pub completion: Completion,
}

impl SelectionReport {
    /// The single outcome of a [`Budget::Fixed`]/[`Budget::Fraction`]
    /// request.
    ///
    /// # Panics
    /// Panics on a sweep report with more than one budget — iterate
    /// [`SelectionReport::outcomes`] instead.
    pub fn outcome(&self) -> &SelectionOutcome {
        assert_eq!(
            self.outcomes.len(),
            1,
            "outcome() is for single-budget reports; this sweep has {} — iterate .outcomes",
            self.outcomes.len()
        );
        &self.outcomes[0]
    }

    /// True when the request touched no cold state: the pool hit a warm
    /// engine and zero artifacts were rebuilt.
    #[must_use]
    pub fn fully_warm(&self) -> bool {
        self.pool_event == PoolEvent::Hit && self.artifact_builds.total_builds() == 0
    }

    /// True when this report is a deadline-degraded anytime prefix rather
    /// than the full answer (see [`SelectionReport::completion`]).
    #[must_use]
    pub fn is_partial(&self) -> bool {
        matches!(self.completion, Completion::Partial { .. })
    }
}

/// One corpus registered with the service: the current snapshot plus its
/// epoch counter. Both handles are swapped atomically (under the corpora
/// write lock) when a [`crate::streaming::GraphDelta`] lands, and the
/// epoch increments with every swap — requests key their engines by it.
pub(crate) struct Corpus {
    pub(crate) graph: Arc<Graph>,
    pub(crate) features: Arc<DenseMatrix>,
    pub(crate) epoch: u64,
    /// Content-hash of this corpus snapshot's lineage, the
    /// `graph_fingerprint` half of every [`crate::store::ContentAddress`]
    /// persisted for it: [`crate::store::fingerprint_corpus`] at
    /// registration (and wholesale replacement), then
    /// [`crate::store::mix_fingerprint`] folded per applied delta. Zero
    /// when the service has no artifact store (never computed).
    pub(crate) fingerprint: u64,
    /// Older `(epoch, fingerprint)` pairs still inside the retention
    /// window ([`GrainService::with_retain_epochs`]), oldest first; the
    /// current epoch is not listed. Pairs that fall out of the window
    /// have their pooled engines reclaimed and persisted artifacts
    /// removed.
    pub(crate) retired: Vec<(u64, u64)>,
}

/// Multi-tenant, **concurrent** selection service: many graphs, many
/// configs, one sharded pool of warm engines, one artifact store. Every
/// method takes `&self` and the service is `Send + Sync`, so one
/// instance behind an `Arc` serves any number of threads.
///
/// ```
/// use grain_core::service::{Budget, GrainService, SelectionRequest};
/// use grain_core::GrainConfig;
/// use grain_graph::generators;
/// use grain_linalg::DenseMatrix;
///
/// let graph = generators::erdos_renyi_gnm(200, 600, 7);
/// let features = DenseMatrix::full(200, 8, 1.0);
/// let service = GrainService::new();
/// service.register_graph("demo", graph, features)?;
///
/// let request = SelectionRequest::new("demo", GrainConfig::ball_d(), Budget::Fixed(10));
/// let report = service.select(&request)?;
/// assert_eq!(report.outcome().selected.len(), 10);
///
/// // The same request again is answered fully warm, bit-identically.
/// let again = service.select(&request)?;
/// assert!(again.fully_warm());
/// assert_eq!(again.outcome().selected, report.outcome().selected);
///
/// // Batched submission groups by engine key and fans groups out across
/// // worker threads; answers come back in request order.
/// let batch = vec![request.clone(), request.clone()];
/// let reports = service.submit_batch(&batch);
/// assert_eq!(reports.len(), 2);
/// for answer in reports {
///     assert_eq!(answer?.outcome().selected, report.outcome().selected);
/// }
/// # Ok::<(), grain_core::GrainError>(())
/// ```
pub struct GrainService {
    pub(crate) corpora: RwLock<HashMap<String, Corpus>>,
    pub(crate) pool: EnginePool,
    /// Serializes corpus mutations ([`GrainService::apply_update`],
    /// [`GrainService::replace_graph`]) against each other. Reads
    /// (selections) never take it — they snapshot under the corpora
    /// read lock and run on whatever epoch they observed.
    pub(crate) update: Mutex<()>,
    /// On-disk artifact store ([`GrainService::with_artifact_store`]).
    /// When set, cold builds first try to load persisted artifacts and
    /// every freshly built artifact is written back, so a process restart
    /// warm-starts from disk instead of re-propagating.
    pub(crate) store: Option<ArtifactStore>,
    /// How many corpus epochs (per graph) keep their pooled engines and
    /// persisted artifacts after an update lands; see
    /// [`GrainService::with_retain_epochs`]. Default 1: only the current
    /// epoch survives.
    pub(crate) retain_epochs: usize,
}

impl Default for GrainService {
    fn default() -> Self {
        Self::new()
    }
}

impl GrainService {
    /// A service with the default pool topology: [`DEFAULT_POOL_SHARDS`]
    /// shards holding [`DEFAULT_POOL_CAPACITY`] engines in total.
    #[must_use]
    pub fn new() -> Self {
        Self::with_topology(
            DEFAULT_POOL_SHARDS,
            DEFAULT_POOL_CAPACITY.div_ceil(DEFAULT_POOL_SHARDS),
        )
    }

    /// A service with a **single-shard** pool keeping up to `capacity`
    /// warm engines — one global LRU order with fully deterministic
    /// eviction, the right choice when exact capacity behavior matters
    /// more than lock spreading (tests, single-threaded embedders).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_topology(1, capacity)
    }

    /// A service with `shards` independent pool shards of
    /// `shard_capacity` engines each.
    #[must_use]
    pub fn with_topology(shards: usize, shard_capacity: usize) -> Self {
        Self {
            corpora: RwLock::new(HashMap::new()),
            pool: EnginePool::sharded(shards, shard_capacity),
            update: Mutex::new(()),
            store: None,
            retain_epochs: 1,
        }
    }

    /// Attaches an on-disk [`ArtifactStore`] rooted at `dir` (created if
    /// absent) and returns the service, so the builder chains off any
    /// constructor. With a store attached:
    ///
    /// * a **cold build** first asks the store for the propagated
    ///   `X^(k)` (with its power ladder), the influence-row CSR, and the
    ///   activation index under the corpus's content address — a
    ///   validated hit adopts the artifact bit-identically and skips that
    ///   stage's compute; a miss or a corrupt file falls through to the
    ///   ordinary cold build;
    /// * every **freshly built** artifact is written back after the
    ///   request answers, so the next process start finds it;
    /// * [`GrainService::apply_update`](crate::streaming) re-persists
    ///   patched artifacts under the new epoch's address and removes
    ///   epochs that fall out of the retention window.
    ///
    /// Corpora registered before or after attachment both fingerprint
    /// correctly; attach before registering to avoid hashing twice.
    pub fn with_artifact_store(mut self, dir: impl Into<std::path::PathBuf>) -> GrainResult<Self> {
        let store = ArtifactStore::open(dir)?;
        // Corpora registered before attachment carry fingerprint 0
        // (never computed); fix them up so their artifacts address
        // correctly.
        {
            let mut corpora = self.corpora.write().unwrap_or_else(PoisonError::into_inner);
            for corpus in corpora.values_mut() {
                if corpus.fingerprint == 0 {
                    corpus.fingerprint =
                        crate::store::fingerprint_corpus(&corpus.graph, &corpus.features);
                }
            }
        }
        self.store = Some(store);
        Ok(self)
    }

    /// Sets how many epochs of pooled engines and persisted artifacts
    /// each graph retains (minimum 1 — the current epoch always
    /// survives). With the default of 1, an applied update immediately
    /// reclaims every engine still keyed to the previous epoch
    /// ([`PoolStats::epoch_reclaims`]) and deletes its store files; a
    /// larger window keeps `n - 1` past epochs around for in-flight
    /// long-running requests or epoch-pinned readers.
    #[must_use]
    pub fn with_retain_epochs(mut self, epochs: usize) -> Self {
        self.retain_epochs = epochs.max(1);
        self
    }

    /// Caps the pool's resident artifact bytes and switches eviction to
    /// **cost-weighted**: when capacity or the budget forces an eviction,
    /// the victim is the engine with the smallest measured artifact
    /// footprint (cheapest to rebuild) instead of the least recently
    /// used — so one million-node engine is not thrashed out by a parade
    /// of toy graphs. The budget is enforced shard-locally at insert
    /// time against the pool-wide aggregate; a single engine larger than
    /// the whole budget still serves (an insert never evicts itself).
    #[must_use]
    pub fn with_byte_budget(mut self, bytes: usize) -> Self {
        self.pool.set_byte_budget(bytes);
        self
    }

    /// The attached artifact store, if any.
    pub fn artifact_store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// Counters of the attached artifact store
    /// ([`StoreStats`](crate::store::StoreStats)), if one is attached.
    pub fn store_stats(&self) -> Option<crate::store::StoreStats> {
        self.store.as_ref().map(ArtifactStore::stats)
    }

    /// Registers a corpus under `id` at epoch 0. Accepts owned values or
    /// `Arc`s; every engine serving this graph shares the handles without
    /// copying. Registering the same id twice is an error — each snapshot
    /// is immutable once registered, since pooled engines may hold it; to
    /// mutate a live corpus use
    /// [`GrainService::apply_update`](crate::streaming) (incremental) or
    /// [`GrainService::replace_graph`] (wholesale swap), both of which
    /// advance the epoch instead of touching the registered snapshot.
    pub fn register_graph(
        &self,
        id: impl Into<String>,
        graph: impl Into<Arc<Graph>>,
        features: impl Into<Arc<DenseMatrix>>,
    ) -> GrainResult<()> {
        let id = id.into();
        let graph = graph.into();
        let features = features.into();
        if features.rows() != graph.num_nodes() {
            return Err(GrainError::FeatureShape {
                feature_rows: features.rows(),
                num_nodes: graph.num_nodes(),
            });
        }
        // Only worth hashing the corpus when artifacts will be persisted
        // under its fingerprint.
        let fingerprint = if self.store.is_some() {
            crate::store::fingerprint_corpus(&graph, &features)
        } else {
            0
        };
        let mut corpora = self.corpora.write().unwrap_or_else(PoisonError::into_inner);
        if corpora.contains_key(&id) {
            return Err(GrainError::GraphAlreadyRegistered { graph: id });
        }
        corpora.insert(
            id,
            Corpus {
                graph,
                features,
                epoch: 0,
                fingerprint,
                retired: Vec::new(),
            },
        );
        Ok(())
    }

    /// Registered graph ids, sorted.
    pub fn graphs(&self) -> Vec<String> {
        let corpora = self.corpora.read().unwrap_or_else(PoisonError::into_inner);
        let mut ids: Vec<String> = corpora.keys().cloned().collect();
        ids.sort_unstable();
        ids
    }

    /// Shared handle to a registered graph (its current epoch's snapshot).
    pub fn graph(&self, id: &str) -> GrainResult<Arc<Graph>> {
        self.corpus(id).map(|(graph, _, _, _)| graph)
    }

    /// The current corpus epoch of a registered graph: 0 at registration,
    /// incremented by every [`GrainService::apply_update`] /
    /// [`GrainService::replace_graph`]. The scheduler stamps this into
    /// its coalescing key at submission, so requests coalesce only within
    /// one corpus version.
    pub fn epoch(&self, id: &str) -> GrainResult<u64> {
        self.corpus(id).map(|(_, _, epoch, _)| epoch)
    }

    /// Shared handle to a registered feature matrix (current epoch).
    pub fn features(&self, id: &str) -> GrainResult<Arc<DenseMatrix>> {
        self.corpus(id).map(|(_, features, _, _)| features)
    }

    /// Replaces a registered corpus wholesale with a new snapshot,
    /// advancing its epoch — the coarse-grained sibling of
    /// [`GrainService::apply_update`] for when the new corpus is not a
    /// small delta of the old one. In-flight requests finish on the old
    /// snapshot (their engines are keyed by the old epoch); new requests
    /// build fresh engines over the replacement. Fails with
    /// [`GrainError::UnknownGraph`] if `id` was never registered (use
    /// [`GrainService::register_graph`] for first registration).
    pub fn replace_graph(
        &self,
        id: &str,
        graph: impl Into<Arc<Graph>>,
        features: impl Into<Arc<DenseMatrix>>,
    ) -> GrainResult<u64> {
        let graph = graph.into();
        let features = features.into();
        if features.rows() != graph.num_nodes() {
            return Err(GrainError::FeatureShape {
                feature_rows: features.rows(),
                num_nodes: graph.num_nodes(),
            });
        }
        let _update = self.update.lock().unwrap_or_else(PoisonError::into_inner);
        // A replacement shares no lineage with the old snapshot, so its
        // fingerprint is a fresh corpus hash, not a delta-mixed one.
        let fingerprint = if self.store.is_some() {
            crate::store::fingerprint_corpus(&graph, &features)
        } else {
            0
        };
        let (epoch, retirement) = {
            let mut corpora = self.corpora.write().unwrap_or_else(PoisonError::into_inner);
            let corpus = corpora
                .get_mut(id)
                .ok_or_else(|| GrainError::UnknownGraph {
                    graph: id.to_string(),
                })?;
            corpus.retired.push((corpus.epoch, corpus.fingerprint));
            corpus.graph = graph;
            corpus.features = features;
            corpus.epoch += 1;
            corpus.fingerprint = fingerprint;
            (
                corpus.epoch,
                Self::trim_retention(corpus, self.retain_epochs),
            )
        };
        self.reclaim_retired(id, retirement);
        Ok(epoch)
    }

    /// Trims a corpus's retired-epoch list to the retention window and
    /// returns what to reclaim: the dropped `(epoch, fingerprint)` pairs
    /// plus the oldest epoch that must stay pooled. Called under the
    /// corpora write lock; the actual reclamation
    /// ([`GrainService::reclaim_retired`]) runs after it is released.
    pub(crate) fn trim_retention(
        corpus: &mut Corpus,
        retain_epochs: usize,
    ) -> (Vec<(u64, u64)>, u64) {
        let keep_old = retain_epochs.saturating_sub(1);
        let mut dropped = Vec::new();
        while corpus.retired.len() > keep_old {
            dropped.push(corpus.retired.remove(0));
        }
        let min_keep = corpus.retired.first().map_or(corpus.epoch, |&(e, _)| e);
        (dropped, min_keep)
    }

    /// Reclaims pooled engines and persisted artifacts of epochs that
    /// fell out of the retention window. Takes only shard locks (and the
    /// filesystem); callers hold the update mutex, so retention never
    /// races another mutation.
    pub(crate) fn reclaim_retired(&self, id: &str, retirement: (Vec<(u64, u64)>, u64)) {
        let (dropped, min_keep_epoch) = retirement;
        if dropped.is_empty() {
            return;
        }
        self.pool.reclaim_stale_epochs(id, min_keep_epoch);
        if let Some(store) = &self.store {
            for &(epoch, fingerprint) in &dropped {
                store.remove_epoch(fingerprint, epoch);
            }
        }
    }

    /// The pool (inspection: topology, resident keys, stats).
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// Aggregate pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Routes `(graph, config)` to its warm engine — building it under
    /// the cold-build latch if needed — and aligns the engine's
    /// greedy-stage fields with `config`.
    ///
    /// This is also the baseline path: selectors that are not Grain pull
    /// shared artifacts (e.g. the propagated `X^(k)` via
    /// [`SelectionEngine::propagated`]) from the same engine Grain
    /// requests use, so every method reads one artifact store. Callers
    /// hold the engine through [`EngineCheckout::lock`]; concurrent
    /// same-key users should re-apply their config under their own lock
    /// session before selecting (as [`GrainService::select`] does).
    pub fn engine(
        &self,
        graph_id: &str,
        config: &GrainConfig,
    ) -> GrainResult<(EngineCheckout<'_>, PoolEvent)> {
        config.validate()?;
        let (graph, features, epoch, fingerprint) = self.corpus(graph_id)?;
        let (checkout, event) =
            self.checkout_engine(graph_id, epoch, fingerprint, config, graph, features)?;
        // Same fingerprint can still differ in greedy-stage fields; the
        // precise invalidation in set_config keeps all artifacts.
        checkout.lock().set_config(*config)?;
        Ok((checkout, event))
    }

    /// Routes `(graph, config)` to its pooled engine without touching the
    /// engine's lock — the shared body of [`GrainService::engine`] and
    /// [`GrainService::select`], which each align the config under their
    /// own lock session. `config` must already be validated and the
    /// corpus handles already fetched, so the warm path pays for both
    /// exactly once.
    fn checkout_engine(
        &self,
        graph_id: &str,
        epoch: u64,
        graph_fingerprint: u64,
        config: &GrainConfig,
        graph: Arc<Graph>,
        features: Arc<DenseMatrix>,
    ) -> GrainResult<(EngineCheckout<'_>, PoolEvent)> {
        let key = PoolKey {
            graph: graph_id.to_string(),
            epoch,
            fingerprint: config.artifact_fingerprint(),
        };
        let (engine, event) = self.pool.get_or_build(key.clone(), || {
            let mut engine = SelectionEngine::over(*config, graph, features)?;
            // X^(k) depends on the kernel alone, not the full
            // fingerprint: a fresh engine adopts a resident sibling's
            // propagation (same graph, same epoch) so e.g. a θ sweep
            // through the service re-propagates nothing. Probed only on
            // an actual build — warm hits never scan the shards — and
            // safe here because build closures run with no shard lock
            // held. Memory beats disk: the store is only consulted for
            // artifacts no sibling holds.
            let seeded = if let Some(propagated) =
                self.pool.cached_propagation(graph_id, epoch, config.kernel)
            {
                engine.seed_propagated(propagated);
                true
            } else {
                false
            };
            if let Some(store) = &self.store {
                // Every load is best-effort: a miss or a corrupt file
                // (counted in StoreStats) just means this stage cold
                // builds, and adopt_* reject shape mismatches. A
                // validated hit is adopted bit-identically, so the
                // engine answers exactly as a cold build would.
                let addr = ContentAddress {
                    graph_fingerprint,
                    epoch,
                    artifact_fingerprint: key.fingerprint.clone(),
                };
                if !seeded {
                    if let Ok(Some((value, ladder))) = store.load_propagation(&addr) {
                        engine.adopt_propagation(
                            Arc::new(value),
                            ladder.into_iter().map(Arc::new).collect(),
                        );
                    }
                }
                if let Ok(Some(rows)) = store.load_rows(&addr) {
                    engine.adopt_rows(rows);
                }
                if let Ok(Some(index)) = store.load_index(&addr) {
                    engine.adopt_index(index);
                }
            }
            Ok(engine)
        })?;
        Ok((
            EngineCheckout {
                pool: &self.pool,
                key,
                engine,
            },
            event,
        ))
    }

    /// Answers a selection request.
    ///
    /// Safe to call from any number of threads: requests for distinct
    /// engine keys proceed independently (sharded pool), requests for the
    /// same key serialize on that engine's mutex, and a cold key is built
    /// exactly once however many requests race for it.
    ///
    /// Typed failures: [`GrainError::UnknownGraph`] for an unregistered
    /// id, [`GrainError::InvalidConfig`] from config validation,
    /// [`GrainError::CandidateOutOfRange`] instead of the engine's panic,
    /// and [`GrainError::InvalidBudget`] from [`Budget::resolve`].
    pub fn select(&self, request: &SelectionRequest) -> GrainResult<SelectionReport> {
        self.select_with(request, &CancelToken::new(), OnDeadline::Fail)
    }

    /// [`GrainService::select`] under cooperative cancellation.
    ///
    /// `cancel` is threaded into the engine
    /// ([`SelectionEngine::select_with_cancel`]) and polled at artifact
    /// stage boundaries, inside the parallel artifact builds, and at
    /// greedy checkpoints. `on_deadline` picks the degradation policy for
    /// deadline trips; an explicit [`CancelToken::cancel`] always fails
    /// with [`GrainError::Cancelled`].
    ///
    /// For a [`Budget::Sweep`] under [`OnDeadline::Partial`], a deadline
    /// trip mid-sweep keeps every outcome produced so far: the report's
    /// `budgets`/`outcomes` are truncated to the completed prefix (whose
    /// last outcome may itself be a partial selection). If the trip lands
    /// before any outcome exists — including inside an artifact build,
    /// which is never partial — the request fails typed.
    ///
    /// An untripped token answers bit-identically to
    /// [`GrainService::select`].
    pub fn select_with(
        &self,
        request: &SelectionRequest,
        cancel: &CancelToken,
        on_deadline: OnDeadline,
    ) -> GrainResult<SelectionReport> {
        fault::point("service.request", Some(cancel));
        let config = request.effective_config();
        config.validate()?;
        let (graph, features, epoch, graph_fingerprint) = self.corpus(&request.graph)?;
        let num_nodes = graph.num_nodes();
        // Borrow the request's pool on the hot path — a warm request must
        // cost only greedy, not a per-request candidate copy.
        let candidates: Cow<'_, [u32]> = match &request.candidates {
            Some(pool) => {
                for &c in pool {
                    if c as usize >= num_nodes {
                        return Err(GrainError::CandidateOutOfRange {
                            candidate: c,
                            num_nodes,
                        });
                    }
                }
                Cow::Borrowed(pool.as_slice())
            }
            None => Cow::Owned((0..num_nodes as u32).collect()),
        };
        let mut budgets = request.budget.resolve(candidates.len())?;
        let (checkout, pool_event) = self.checkout_engine(
            &request.graph,
            epoch,
            graph_fingerprint,
            &config,
            graph,
            features,
        )?;
        // One lock session for config alignment plus every budget: a
        // concurrent same-key request cannot interleave its own config.
        let mut engine = checkout.lock();
        engine.set_config(config)?;
        let before = engine.stats();
        let mut outcomes: Vec<SelectionOutcome> = Vec::with_capacity(budgets.len());
        for &budget in &budgets {
            match engine.select_with_cancel(
                config.variant,
                &candidates,
                budget,
                cancel,
                on_deadline,
            ) {
                Ok(outcome) => {
                    let partial = outcome.is_partial();
                    outcomes.push(outcome);
                    if partial {
                        break; // the token stays tripped; later budgets cannot run
                    }
                }
                // A deadline trip between sweep entries (or inside a later
                // entry's artifact stage) under the Partial policy keeps
                // the completed prefix of the sweep.
                Err(GrainError::DeadlineExceeded {
                    stage: DeadlineStage::MidSelection,
                }) if on_deadline == OnDeadline::Partial && !outcomes.is_empty() => break,
                Err(e) => return Err(e),
            }
        }
        // Decide completion before truncating: a sweep cut short between
        // budgets is partial even though its last outcome is complete.
        let completion = match outcomes.last() {
            Some(last) if last.is_partial() => last.completion,
            _ if outcomes.len() < budgets.len() => Completion::Partial {
                cause: CancelCause::Deadline,
            },
            _ => Completion::Complete,
        };
        budgets.truncate(outcomes.len());
        let artifact_builds = engine.stats().delta_since(&before);
        let artifact_bytes = engine.artifact_bytes();
        // Save-on-build: persist exactly the stages this request built
        // (per-stage build deltas, so freshly *loaded* artifacts — which
        // bump no build counters — are never re-written). Encoding runs
        // under the engine lock we already hold; the writes happen after
        // both the lock and the checkout are released, off every hot
        // path. In select_with the checkout fingerprint always equals
        // the effective config's, so the encoded artifacts match their
        // content address. Best-effort: a failed write costs a future
        // cold build, never this request.
        let pending: Vec<PendingArtifact> = match &self.store {
            Some(store)
                if artifact_builds.propagation_builds > 0
                    || artifact_builds.influence_builds > 0
                    || artifact_builds.index_builds > 0 =>
            {
                let addr = ContentAddress {
                    graph_fingerprint,
                    epoch,
                    artifact_fingerprint: config.artifact_fingerprint(),
                };
                let mut pending = Vec::new();
                if artifact_builds.propagation_builds > 0 {
                    if let Some((value, ladder)) = engine.persistable_propagation() {
                        let levels: Vec<&DenseMatrix> = ladder.iter().map(Arc::as_ref).collect();
                        pending.push(store.encode_propagation(&addr, &value, &levels));
                    }
                }
                if artifact_builds.influence_builds > 0 {
                    if let Some(rows) = engine.persistable_rows() {
                        pending.push(store.encode_rows(&addr, rows));
                    }
                }
                if artifact_builds.index_builds > 0 {
                    if let Some(index) = engine.persistable_index() {
                        pending.push(store.encode_index(&addr, index));
                    }
                }
                pending
            }
            _ => Vec::new(),
        };
        drop(engine);
        // Record explicitly while this request still owns the checkout:
        // the drop-time re-measure is best-effort (it skips when another
        // same-key request already grabbed the engine), but every report
        // must land its bytes in the pool aggregate.
        self.pool
            .record_bytes(&checkout.key, &checkout.engine, artifact_bytes.total());
        drop(checkout);
        if let Some(store) = &self.store {
            for artifact in pending {
                let _ = store.commit(artifact);
            }
        }
        Ok(SelectionReport {
            graph: request.graph.clone(),
            seed: request.seed,
            budgets,
            outcomes,
            pool_event,
            artifact_builds,
            artifact_bytes,
            pool_stats: self.pool.stats(),
            completion,
        })
    }

    /// Answers a batch of requests, exploiting the sharded pool: requests
    /// are grouped by engine key `(graph, artifact fingerprint)`, groups
    /// run across worker threads (each group's engine lives on its own
    /// shard slot), and requests within a group — e.g. a budget sweep
    /// over one fingerprint — run sequentially on the group's warm
    /// engine in submission order.
    ///
    /// Reports come back in request order, each independently `Ok` or a
    /// typed error, and are bit-identical to submitting the same requests
    /// one by one ([`GrainService::select`]) in any order.
    ///
    /// Every request runs **panic-isolated**: a panic inside one request
    /// (a corrupted objective, an injected fault) becomes that request's
    /// [`GrainError::SelectionPanicked`] — it never kills a worker
    /// thread, the batch, or another request's result.
    pub fn submit_batch(&self, requests: &[SelectionRequest]) -> Vec<GrainResult<SelectionReport>> {
        self.submit_batch_with_workers(requests, 0)
    }

    /// [`GrainService::submit_batch`] with an explicit worker-thread cap
    /// (`0` = auto). The effective worker count never exceeds the number
    /// of distinct engine keys in the batch.
    pub fn submit_batch_with_workers(
        &self,
        requests: &[SelectionRequest],
        workers: usize,
    ) -> Vec<GrainResult<SelectionReport>> {
        self.run_grouped(
            requests.len(),
            |i| requests[i].engine_key(),
            &|i| self.isolated(&requests[i].graph, || self.select(&requests[i])),
            workers,
        )
    }

    /// [`GrainService::submit_batch_with_workers`] with a per-request
    /// [`CancelToken`] and degradation policy — the entry point the
    /// [`crate::scheduler::Scheduler`] dispatches through, so a waiter
    /// cancelling its ticket stops exactly its own run. Grouping,
    /// ordering, panic isolation, and the bit-identity contract are
    /// unchanged; each request answers as
    /// [`GrainService::select_with`] would.
    pub fn submit_batch_with(
        &self,
        items: &[(SelectionRequest, CancelToken, OnDeadline)],
        workers: usize,
    ) -> Vec<GrainResult<SelectionReport>> {
        self.run_grouped(
            items.len(),
            |i| items[i].0.engine_key(),
            &|i| {
                let (request, cancel, on_deadline) = &items[i];
                self.isolated(&request.graph, || {
                    self.select_with(request, cancel, *on_deadline)
                })
            },
            workers,
        )
    }

    /// Runs `op`, converting a panic into that request's typed
    /// [`GrainError::SelectionPanicked`]. Pool and engine state stay
    /// servable across the unwind: engine artifacts assign only after
    /// complete builds (never torn), poisoned locks are recovered
    /// everywhere, and the cold-build latch guard fails waiters typed.
    fn isolated(
        &self,
        graph: &str,
        op: impl FnOnce() -> GrainResult<SelectionReport>,
    ) -> GrainResult<SelectionReport> {
        catch_unwind(AssertUnwindSafe(op)).unwrap_or_else(|_| {
            Err(GrainError::SelectionPanicked {
                graph: graph.to_string(),
            })
        })
    }

    /// Shared batch body: groups indices `0..n` by engine key (preserving
    /// submission order within each group, first-seen group order
    /// overall), fans the groups out over worker threads, and answers
    /// index `i` via `answer(i)`.
    fn run_grouped(
        &self,
        n: usize,
        key_of: impl Fn(usize) -> (String, String),
        answer: &(dyn Fn(usize) -> GrainResult<SelectionReport> + Sync),
        workers: usize,
    ) -> Vec<GrainResult<SelectionReport>> {
        let mut group_of: HashMap<(String, String), usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let key = key_of(i);
            let group = *group_of.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[group].push(i);
        }
        let workers = par::resolve_threads(workers).min(groups.len()).max(1);
        if workers <= 1 {
            return (0..n).map(answer).collect();
        }
        let mut slots: Vec<Option<GrainResult<SelectionReport>>> = (0..n).map(|_| None).collect();
        let groups = &groups;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move |_| {
                        let mut answered = Vec::new();
                        let mut g = w;
                        while g < groups.len() {
                            for &i in &groups[g] {
                                answered.push((i, answer(i)));
                            }
                            g += workers;
                        }
                        answered
                    })
                })
                .collect();
            for handle in handles {
                for (i, report) in handle.join().expect("batch worker panicked") {
                    slots[i] = Some(report);
                }
            }
        })
        .expect("batch scope panicked");
        slots
            .into_iter()
            .map(|slot| slot.expect("every request lands in exactly one group"))
            .collect()
    }

    /// One consistent corpus snapshot:
    /// `(graph, features, epoch, fingerprint)` as of a single corpora
    /// read-lock acquisition. A request built from this snapshot runs
    /// entirely on that epoch even if an update lands concurrently.
    pub(crate) fn corpus(&self, id: &str) -> GrainResult<(Arc<Graph>, Arc<DenseMatrix>, u64, u64)> {
        let corpora = self.corpora.read().unwrap_or_else(PoisonError::into_inner);
        corpora
            .get(id)
            .map(|c| {
                (
                    Arc::clone(&c.graph),
                    Arc::clone(&c.features),
                    c.epoch,
                    c.fingerprint,
                )
            })
            .ok_or_else(|| GrainError::UnknownGraph {
                graph: id.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::generators;

    fn corpus(n: usize, seed: u64) -> (Graph, DenseMatrix) {
        let g = generators::erdos_renyi_gnm(n, 3 * n, seed);
        let mut x = DenseMatrix::zeros(n, 6);
        for v in 0..n {
            for (j, value) in x.row_mut(v).iter_mut().enumerate() {
                *value = ((v * 31 + j * 7 + seed as usize) % 13) as f32 * 0.1;
            }
        }
        (g, x)
    }

    fn service_with(graphs: &[(&str, u64)]) -> GrainService {
        let service = GrainService::with_capacity(4);
        for &(id, seed) in graphs {
            let (g, x) = corpus(120, seed);
            service.register_graph(id, g, x).unwrap();
        }
        service
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GrainService>();
        assert_send_sync::<EnginePool>();
    }

    #[test]
    fn sibling_engines_share_propagation() {
        // A second artifact fingerprint for the same graph (radius change)
        // gets its own pooled engine, but adopts the sibling's X^(k)
        // instead of re-propagating.
        let service = service_with(&[("g", 1)]);
        let base = GrainConfig::ball_d();
        let first = service
            .select(&SelectionRequest::new("g", base, Budget::Fixed(5)))
            .unwrap();
        assert_eq!(first.artifact_builds.propagation_builds, 1);
        let deep = GrainConfig {
            radius: base.radius * 2.0,
            ..base
        };
        let second = service
            .select(&SelectionRequest::new("g", deep, Budget::Fixed(5)))
            .unwrap();
        assert_eq!(second.pool_event, PoolEvent::ColdMiss);
        assert_eq!(
            second.artifact_builds.propagation_builds, 0,
            "the new engine must adopt the sibling's propagation"
        );
        assert_eq!(service.pool().len(), 2);
    }

    #[test]
    fn rekeyed_engines_are_rehomed_not_served_stale() {
        // A caller can re-key a checked-out engine via set_config; when
        // the checkout drops, the pool must re-index it under its actual
        // fingerprint instead of serving its caches for the old key.
        let service = service_with(&[("g", 1)]);
        let base = GrainConfig::ball_d();
        let deep = GrainConfig {
            kernel: grain_prop::Kernel::RandomWalk { k: 3 },
            ..base
        };
        {
            let (checkout, _) = service.engine("g", &base).unwrap();
            checkout.lock().set_config(deep).unwrap();
        } // drop re-homes
          // The re-keyed engine now answers for `deep`...
        let (_, event) = service.engine("g", &deep).unwrap();
        assert_eq!(event, PoolEvent::Hit);
        // ...and a request for `base` builds fresh instead of hitting the
        // wrong-keyed caches.
        let (_, event) = service.engine("g", &base).unwrap();
        assert_eq!(event, PoolEvent::ColdMiss);
        assert_eq!(service.pool().len(), 2);
    }

    #[test]
    fn fixed_and_fraction_budgets_resolve() {
        assert_eq!(Budget::Fixed(5).resolve(100).unwrap(), vec![5]);
        assert_eq!(Budget::Fixed(500).resolve(100).unwrap(), vec![100]);
        assert_eq!(Budget::Fraction(0.1).resolve(100).unwrap(), vec![10]);
        assert_eq!(Budget::Fraction(1e-9).resolve(100).unwrap(), vec![1]);
        assert_eq!(Budget::Fraction(0.5).resolve(0).unwrap(), vec![0]);
        assert!(matches!(
            Budget::Fraction(0.0).resolve(100),
            Err(GrainError::InvalidBudget { .. })
        ));
        assert!(matches!(
            Budget::Fraction(1.5).resolve(100),
            Err(GrainError::InvalidBudget { .. })
        ));
    }

    #[test]
    fn sweep_budgets_resolve_in_order() {
        assert_eq!(
            Budget::Sweep(vec![4, 8, 200]).resolve(100).unwrap(),
            vec![4, 8, 100]
        );
        assert!(matches!(
            Budget::Sweep(vec![]).resolve(100),
            Err(GrainError::InvalidBudget { .. })
        ));
    }

    #[test]
    fn unknown_graph_and_bad_candidates_are_typed() {
        let service = service_with(&[("a", 1)]);
        let missing = SelectionRequest::new("nope", GrainConfig::ball_d(), Budget::Fixed(3));
        assert_eq!(
            service.select(&missing).unwrap_err(),
            GrainError::UnknownGraph {
                graph: "nope".into()
            }
        );
        let out_of_range = SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Fixed(3))
            .with_candidates(vec![0, 5, 9000]);
        assert_eq!(
            service.select(&out_of_range).unwrap_err(),
            GrainError::CandidateOutOfRange {
                candidate: 9000,
                num_nodes: 120
            }
        );
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let service = service_with(&[("a", 1)]);
        let (g, x) = corpus(50, 9);
        assert_eq!(
            service.register_graph("a", g, x),
            Err(GrainError::GraphAlreadyRegistered { graph: "a".into() })
        );
        let (g, x) = corpus(50, 9);
        let short = DenseMatrix::zeros(3, 2);
        assert!(matches!(
            service.register_graph("b", g, short),
            Err(GrainError::FeatureShape { .. })
        ));
        drop(x);
    }

    #[test]
    fn repeat_requests_hit_the_pool_and_match() {
        let service = service_with(&[("a", 1)]);
        let request = SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Fixed(8));
        let cold = service.select(&request).unwrap();
        assert_eq!(cold.pool_event, PoolEvent::ColdMiss);
        assert!(cold.artifact_builds.total_builds() > 0);
        let warm = service.select(&request).unwrap();
        assert!(warm.fully_warm());
        assert_eq!(warm.outcome().selected, cold.outcome().selected);
        assert_eq!(warm.outcome().sigma, cold.outcome().sigma);
        assert_eq!(service.pool_stats().hits, 1);
        assert_eq!(service.pool_stats().cold_misses, 1);
    }

    #[test]
    fn greedy_only_config_changes_share_one_engine() {
        let service = service_with(&[("a", 2)]);
        let base = SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Fixed(6));
        let _ = service.select(&base).unwrap();
        let mut gamma = GrainConfig::ball_d();
        gamma.gamma = 0.25;
        gamma.parallelism = 2; // execution knob, not an artifact field
        let tweaked = SelectionRequest::new("a", gamma, Budget::Fixed(6))
            .with_variant(GrainVariant::NoDiversity);
        let report = service.select(&tweaked).unwrap();
        assert!(report.fully_warm(), "greedy-only change must not rebuild");
        assert_eq!(service.pool().len(), 1);
    }

    #[test]
    fn variant_override_applies() {
        let service = service_with(&[("a", 3)]);
        let full = SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Fixed(6));
        let ablated = full.clone().with_variant(GrainVariant::NoDiversity);
        let a = service.select(&full).unwrap();
        let b = service.select(&ablated).unwrap();
        // NoDiversity ignores the diversity term; traces must differ.
        assert_ne!(a.outcome().objective_trace, b.outcome().objective_trace);
    }

    #[test]
    fn sweep_reports_one_outcome_per_budget() {
        let service = service_with(&[("a", 4)]);
        let request =
            SelectionRequest::new("a", GrainConfig::ball_d(), Budget::Sweep(vec![3, 6, 9]));
        let report = service.select(&request).unwrap();
        assert_eq!(report.budgets, vec![3, 6, 9]);
        assert_eq!(report.outcomes.len(), 3);
        for (outcome, budget) in report.outcomes.iter().zip(&report.budgets) {
            assert_eq!(outcome.selected.len(), *budget);
        }
        // Artifacts were built once for the whole sweep.
        assert_eq!(report.artifact_builds.propagation_builds, 1);
        assert_eq!(report.artifact_builds.selections, 3);
    }

    #[test]
    fn cross_graph_requests_use_distinct_engines() {
        let service = service_with(&[("a", 5), ("b", 6)]);
        let cfg = GrainConfig::ball_d();
        let ra = service
            .select(&SelectionRequest::new("a", cfg, Budget::Fixed(5)))
            .unwrap();
        let rb = service
            .select(&SelectionRequest::new("b", cfg, Budget::Fixed(5)))
            .unwrap();
        assert_eq!(ra.pool_event, PoolEvent::ColdMiss);
        assert_eq!(rb.pool_event, PoolEvent::ColdMiss);
        assert_eq!(service.pool().len(), 2);
        let keys = service.pool().keys();
        // Single-shard pool: MRU first.
        assert_eq!(keys[0].0, "b");
        assert_eq!(keys[1].0, "a");
    }

    #[test]
    fn lru_evicts_and_counts_rebuilds() {
        let service = GrainService::with_capacity(1);
        for (id, seed) in [("a", 7), ("b", 8)] {
            let (g, x) = corpus(80, seed);
            service.register_graph(id, g, x).unwrap();
        }
        let cfg = GrainConfig::ball_d();
        let ra = service
            .select(&SelectionRequest::new("a", cfg, Budget::Fixed(4)))
            .unwrap();
        let _ = service
            .select(&SelectionRequest::new("b", cfg, Budget::Fixed(4)))
            .unwrap();
        let ra2 = service
            .select(&SelectionRequest::new("a", cfg, Budget::Fixed(4)))
            .unwrap();
        assert_eq!(ra2.pool_event, PoolEvent::RebuildAfterEviction);
        assert_eq!(service.pool_stats().evictions, 2);
        assert_eq!(service.pool_stats().evicted_rebuilds, 1);
        // Thrash or not, the answers stay bit-identical.
        assert_eq!(ra.outcome().selected, ra2.outcome().selected);
        assert_eq!(ra.outcome().objective_trace, ra2.outcome().objective_trace);
    }

    #[test]
    fn sharded_pool_isolates_capacity_per_shard() {
        // 4 shards × 1 engine: four distinct fingerprints spread over the
        // shards; as long as two land on different shards, both stay
        // resident — which a global capacity of 1 would forbid.
        let service = GrainService::with_topology(4, 1);
        let (g, x) = corpus(100, 11);
        service.register_graph("a", g, x).unwrap();
        assert_eq!(service.pool().num_shards(), 4);
        assert_eq!(service.pool().capacity(), 4);
        let base = GrainConfig::ball_d();
        let configs: Vec<GrainConfig> = (0..4)
            .map(|i| GrainConfig {
                radius: base.radius + i as f32 * 0.01,
                ..base
            })
            .collect();
        for cfg in &configs {
            let _ = service
                .select(&SelectionRequest::new("a", *cfg, Budget::Fixed(4)))
                .unwrap();
        }
        assert!(
            service.pool().len() >= 2,
            "4 keys over 4 single-slot shards must keep at least 2 resident"
        );
        let stats = service.pool_stats();
        assert_eq!(stats.cold_misses, 4);
    }

    #[test]
    fn submit_batch_answers_in_request_order_and_matches_serial() {
        let service = service_with(&[("a", 12), ("b", 13)]);
        let base = GrainConfig::ball_d();
        let deep = GrainConfig {
            theta: grain_influence::ThetaRule::RelativeToRowMax(0.5),
            ..base
        };
        let requests = vec![
            SelectionRequest::new("a", base, Budget::Fixed(5)),
            SelectionRequest::new("b", base, Budget::Sweep(vec![3, 6])),
            SelectionRequest::new("a", deep, Budget::Fixed(5)),
            SelectionRequest::new("a", base, Budget::Fixed(7)), // same key as #0
            SelectionRequest::new("nope", base, Budget::Fixed(2)), // typed error
        ];
        let serial: Vec<GrainResult<SelectionReport>> = {
            let oracle = service_with(&[("a", 12), ("b", 13)]);
            requests.iter().map(|r| oracle.select(r)).collect()
        };
        let batched = service.submit_batch(&requests);
        assert_eq!(batched.len(), requests.len());
        for (i, (batch, serial)) in batched.iter().zip(&serial).enumerate() {
            match (batch, serial) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b.budgets, s.budgets, "request {i}");
                    for (bo, so) in b.outcomes.iter().zip(&s.outcomes) {
                        assert_eq!(bo.selected, so.selected, "request {i}");
                        assert_eq!(bo.objective_trace, so.objective_trace, "request {i}");
                    }
                }
                (Err(b), Err(s)) => assert_eq!(b, s, "request {i}"),
                other => panic!("request {i}: batch/serial disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn reports_carry_artifact_bytes_and_pool_tracks_residency() {
        let service = service_with(&[("a", 20), ("b", 21)]);
        let cfg = GrainConfig::ball_d();
        let ra = service
            .select(&SelectionRequest::new("a", cfg, Budget::Fixed(5)))
            .unwrap();
        assert!(ra.artifact_bytes.influence_rows > 0);
        assert!(
            ra.artifact_bytes.influence_rows < ra.artifact_bytes.influence_rows_nested,
            "CSR rows must undercut the nested layout"
        );
        assert!(ra.artifact_bytes.total() > 0);
        assert_eq!(
            service.pool_stats().resident_bytes,
            ra.artifact_bytes.total(),
            "one resident engine: the pool aggregate is its measure"
        );
        // A second graph adds its own engine's bytes on top.
        let rb = service
            .select(&SelectionRequest::new("b", cfg, Budget::Fixed(5)))
            .unwrap();
        assert_eq!(
            service.pool_stats().resident_bytes,
            ra.artifact_bytes.total() + rb.artifact_bytes.total()
        );
        // The report snapshots the aggregate *after* recording itself.
        assert_eq!(
            rb.pool_stats.resident_bytes,
            service.pool_stats().resident_bytes
        );
        // Dropping every engine zeroes the aggregate.
        service.pool().clear();
        assert_eq!(service.pool_stats().resident_bytes, 0);
    }

    #[test]
    fn byte_budget_evicts_cheapest_to_rebuild_not_lru() {
        // Single-shard pool of 2 with a byte budget: eviction is
        // cost-weighted. "big" (400 nodes) is the LRU entry when "t2"
        // arrives, but the victim must be the small engine "t1" — a
        // million-node engine is not thrashed out by toy graphs.
        let service = GrainService::with_capacity(2).with_byte_budget(usize::MAX);
        let (g, x) = corpus(400, 31);
        service.register_graph("big", g, x).unwrap();
        for (id, seed) in [("t1", 32), ("t2", 33)] {
            let (g, x) = corpus(40, seed);
            service.register_graph(id, g, x).unwrap();
        }
        let cfg = GrainConfig::ball_d();
        for id in ["big", "t1", "t2"] {
            let _ = service
                .select(&SelectionRequest::new(id, cfg, Budget::Fixed(4)))
                .unwrap();
        }
        assert_eq!(service.pool_stats().evictions, 1);
        let resident: Vec<String> = service.pool().keys().into_iter().map(|k| k.0).collect();
        assert!(
            resident.contains(&"big".to_string()),
            "the expensive engine must survive: resident = {resident:?}"
        );
        assert!(!resident.contains(&"t1".to_string()));
        // And the survivor still answers warm.
        let report = service
            .select(&SelectionRequest::new("big", cfg, Budget::Fixed(4)))
            .unwrap();
        assert_eq!(report.pool_event, PoolEvent::Hit);
    }

    #[test]
    fn byte_budget_enforces_the_aggregate_cap() {
        // A 1-byte budget can never fit two measured engines: each
        // insert evicts every previously measured engine (the insert
        // itself is protected, so one over-budget engine still serves).
        let service = GrainService::with_capacity(8).with_byte_budget(1);
        for (id, seed) in [("a", 41), ("b", 42), ("c", 43)] {
            let (g, x) = corpus(60, seed);
            service.register_graph(id, g, x).unwrap();
        }
        let cfg = GrainConfig::ball_d();
        for id in ["a", "b", "c"] {
            let _ = service
                .select(&SelectionRequest::new(id, cfg, Budget::Fixed(3)))
                .unwrap();
        }
        assert_eq!(
            service.pool().len(),
            1,
            "only the most recent insert may stay resident under a 1-byte budget"
        );
        assert_eq!(service.pool().byte_budget(), Some(1));
    }

    #[test]
    fn eviction_subtracts_exactly_the_evicted_bytes() {
        let service = GrainService::with_capacity(1);
        for (id, seed) in [("a", 22), ("b", 23)] {
            let (g, x) = corpus(80, seed);
            service.register_graph(id, g, x).unwrap();
        }
        let cfg = GrainConfig::ball_d();
        let _ = service
            .select(&SelectionRequest::new("a", cfg, Budget::Fixed(4)))
            .unwrap();
        // Capacity 1: selecting on "b" evicts "a"; only "b" stays counted.
        let rb = service
            .select(&SelectionRequest::new("b", cfg, Budget::Fixed(4)))
            .unwrap();
        assert_eq!(service.pool_stats().evictions, 1);
        assert_eq!(
            service.pool_stats().resident_bytes,
            rb.artifact_bytes.total()
        );
    }

    #[test]
    fn outcome_accessor_guards_sweeps() {
        let service = service_with(&[("a", 10)]);
        let report = service
            .select(&SelectionRequest::new(
                "a",
                GrainConfig::ball_d(),
                Budget::Sweep(vec![2, 4]),
            ))
            .unwrap();
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| report.outcome().clone()));
        assert!(caught.is_err(), "outcome() must panic on sweeps");
    }
}

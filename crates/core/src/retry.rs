//! Deterministic retry with capped exponential backoff.
//!
//! Only errors that are *transient by construction* are retried —
//! [`GrainError::is_retryable`](crate::error::GrainError::is_retryable)
//! whitelists `EngineBuildAbandoned` (a
//! racing build was torn down; a fresh attempt rebuilds cleanly) and
//! `QueueFull` (admission control sheds load; the queue drains). Every
//! other error is either a caller bug (`InvalidConfig`,
//! `CandidateOutOfRange`, ...) or a decision that must not be second-
//! guessed (`Cancelled`, `DeadlineExceeded`, `SelectionPanicked`), so
//! retrying would waste CPU or mask a real failure.
//!
//! Backoff is deterministic (no jitter): `base_delay * 2^attempt`,
//! capped at `max_delay`. The workspace trades the thundering-herd
//! smoothing of jitter for replayable tests — the same failure sequence
//! produces the same sleep schedule on every run.

use crate::error::GrainResult;
use std::time::Duration;

/// Retry budget and backoff shape for [`RetryPolicy::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`0` is treated as `1`).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on each further retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 5ms base, capped at 200ms — enough to ride out a
    /// torn-down cold build or a briefly full queue without turning a
    /// persistent failure into seconds of blocking.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The sleep before retry number `retry` (0-based):
    /// `min(base_delay << retry, max_delay)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let shifted = self
            .base_delay
            .checked_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .unwrap_or(self.max_delay);
        shifted.min(self.max_delay)
    }

    /// Runs `op` until it succeeds, fails non-retryably, or the attempt
    /// budget is spent; sleeps [`backoff`](RetryPolicy::backoff) between
    /// attempts. Returns the last error when attempts run out.
    pub fn run<T>(&self, mut op: impl FnMut() -> GrainResult<T>) -> GrainResult<T> {
        let attempts = self.max_attempts.max(1);
        let mut retry = 0;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) if e.is_retryable() && retry + 1 < attempts => {
                    std::thread::sleep(self.backoff(retry));
                    retry += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GrainError;

    #[test]
    fn success_on_first_attempt_runs_once() {
        let mut calls = 0;
        let out = RetryPolicy::default().run(|| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retryable_errors_are_retried_until_success() {
        let mut calls = 0;
        let policy = RetryPolicy {
            base_delay: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let out = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(GrainError::QueueFull { capacity: 4 })
            } else {
                Ok("served")
            }
        });
        assert_eq!(out, Ok("served"));
        assert_eq!(calls, 3);
    }

    #[test]
    fn non_retryable_errors_fail_immediately() {
        let mut calls = 0;
        let out: GrainResult<()> = RetryPolicy::default().run(|| {
            calls += 1;
            Err(GrainError::Cancelled)
        });
        assert_eq!(out, Err(GrainError::Cancelled));
        assert_eq!(calls, 1);
    }

    #[test]
    fn attempt_budget_is_respected_and_last_error_returned() {
        let mut calls = 0;
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        };
        let out: GrainResult<()> = policy.run(|| {
            calls += 1;
            Err(GrainError::EngineBuildAbandoned {
                graph: "papers".into(),
            })
        });
        assert_eq!(
            out,
            Err(GrainError::EngineBuildAbandoned {
                graph: "papers".into()
            })
        );
        assert_eq!(calls, 4);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(35));
        assert_eq!(policy.backoff(31), Duration::from_millis(35));
        assert_eq!(policy.backoff(200), Duration::from_millis(35));
    }
}

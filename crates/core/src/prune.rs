//! Candidate pruning (§3.4 efficiency optimization).
//!
//! "The key idea is to identify and dismiss uninfluential nodes in order to
//! dramatically reduce the amount of computation for evaluating influence
//! spread. For example, we can use the degree of nodes or the distribution
//! of random walkers throughout the nodes to filter out a vast number of
//! uninfluential nodes."

use crate::config::PruneStrategy;
use grain_graph::Graph;
use grain_influence::InfluenceRows;

/// Applies a [`PruneStrategy`] to a candidate pool, returning the retained
/// candidates sorted by node id.
///
/// At least one candidate always survives (a non-empty pool never prunes to
/// nothing). Ties at the cutoff break toward the smaller node id.
pub fn prune_candidates(
    strategy: PruneStrategy,
    graph: &Graph,
    influence: &InfluenceRows,
    candidates: &[u32],
) -> Vec<u32> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let (scores, keep_fraction): (Vec<f64>, f64) = match strategy {
        PruneStrategy::Degree { keep_fraction } => (
            candidates
                .iter()
                .map(|&c| graph.degree(c as usize) as f64)
                .collect(),
            keep_fraction,
        ),
        PruneStrategy::WalkMass { keep_fraction } => {
            let mass = influence.walk_mass();
            (
                candidates
                    .iter()
                    .map(|&c| mass[c as usize] as f64)
                    .collect(),
                keep_fraction,
            )
        }
    };
    let keep =
        ((candidates.len() as f64 * keep_fraction).ceil() as usize).clamp(1, candidates.len());
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .total_cmp(&scores[a])
            .then(candidates[a].cmp(&candidates[b]))
    });
    let mut kept: Vec<u32> = order[..keep].iter().map(|&i| candidates[i]).collect();
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::{generators, transition_matrix, TransitionKind};

    fn fixtures() -> (Graph, InfluenceRows) {
        let g = generators::barabasi_albert(100, 2, 3);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let rows = InfluenceRows::compute(&t, 2, 0.0);
        (g, rows)
    }

    #[test]
    fn degree_prune_keeps_hubs() {
        let (g, rows) = fixtures();
        let candidates: Vec<u32> = (0..100).collect();
        let kept = prune_candidates(
            PruneStrategy::Degree { keep_fraction: 0.1 },
            &g,
            &rows,
            &candidates,
        );
        assert_eq!(kept.len(), 10);
        let min_kept_degree = kept.iter().map(|&c| g.degree(c as usize)).min().unwrap();
        let dropped_max = candidates
            .iter()
            .filter(|c| !kept.contains(c))
            .map(|&c| g.degree(c as usize))
            .max()
            .unwrap();
        assert!(min_kept_degree >= dropped_max.saturating_sub(0) || min_kept_degree >= dropped_max);
    }

    #[test]
    fn walk_mass_prune_keeps_influential_nodes() {
        let (g, rows) = fixtures();
        let candidates: Vec<u32> = (0..100).collect();
        let kept = prune_candidates(
            PruneStrategy::WalkMass { keep_fraction: 0.2 },
            &g,
            &rows,
            &candidates,
        );
        assert_eq!(kept.len(), 20);
        let mass = rows.walk_mass();
        let min_kept = kept
            .iter()
            .map(|&c| mass[c as usize])
            .fold(f32::MAX, f32::min);
        let max_dropped = candidates
            .iter()
            .filter(|c| !kept.contains(c))
            .map(|&c| mass[c as usize])
            .fold(f32::MIN, f32::max);
        assert!(min_kept >= max_dropped - 1e-6);
    }

    #[test]
    fn at_least_one_candidate_survives() {
        let (g, rows) = fixtures();
        let kept = prune_candidates(
            PruneStrategy::Degree {
                keep_fraction: 0.0001,
            },
            &g,
            &rows,
            &[5, 6, 7],
        );
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn full_fraction_keeps_everything() {
        let (g, rows) = fixtures();
        let candidates: Vec<u32> = vec![9, 3, 27];
        let kept = prune_candidates(
            PruneStrategy::Degree { keep_fraction: 1.0 },
            &g,
            &rows,
            &candidates,
        );
        assert_eq!(kept, vec![3, 9, 27]);
    }

    #[test]
    fn empty_pool_stays_empty() {
        let (g, rows) = fixtures();
        let kept = prune_candidates(
            PruneStrategy::WalkMass { keep_fraction: 0.5 },
            &g,
            &rows,
            &[],
        );
        assert!(kept.is_empty());
    }
}

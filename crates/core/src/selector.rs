//! The one-shot Grain selector: a thin wrapper over [`SelectionEngine`].
//!
//! Wires together the full §3 stack:
//!
//! 1. decoupled propagation `X^(k)` (Eq. 6, via `grain-prop`),
//! 2. influence rows under the kernel's Jacobian (Definition 3.1),
//! 3. activation index at threshold `θ` (Definition 3.2),
//! 4. diversity function over the normalized `X^(k)` space (§3.3),
//! 5. greedy / CELF maximization of the DIM objective (Algorithm 1),
//!
//! with optional §3.4 candidate pruning. One call = one labeling campaign:
//! Grain is model-free and oracle-free, so the whole budget is selected in
//! a single pass with no retraining in the loop. Every stage runs inside a
//! [`SelectionEngine`]; callers answering many selections over one
//! corpus (budget sweeps, sensitivity scans, serving) should hold a warm
//! engine — see [`GrainSelector::engine`] — or go through
//! [`crate::service::GrainService`], the pooled request/response front
//! door.
//!
//! The pre-service positional one-shots (`GrainSelector::select`,
//! `GrainSelector::activation_index`) spent their one deprecation release
//! as bit-identical shims and are now **removed**; [`GrainSelector`]
//! remains as a thin, validated config holder whose
//! [`GrainSelector::engine`] constructor is the supported path into the
//! staged pipeline. Use [`SelectionEngine::activation_index`] on a warm
//! engine where the removed index shim was used.

use crate::cancel::CancelCause;
use crate::config::GrainConfig;
use crate::engine::SelectionEngine;
use crate::error::GrainResult;
use grain_graph::Graph;
use grain_linalg::DenseMatrix;
use std::time::Duration;

/// Wall-clock breakdown of one selection run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelectionTimings {
    /// Feature propagation `X^(k)`.
    pub propagation: Duration,
    /// Influence-row computation.
    pub influence: Duration,
    /// Activation-index inversion + diversity precomputation.
    pub indexing: Duration,
    /// Greedy maximization loop.
    pub greedy: Duration,
    /// End-to-end total.
    pub total: Duration,
}

/// Whether a selection ran to its full budget or stopped early at a
/// cooperative cancellation checkpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Completion {
    /// The greedy loop ran to its full budget (or exhausted candidates).
    #[default]
    Complete,
    /// The run was cancelled mid-greedy and degraded to the prefix
    /// selected so far (requests opt in via
    /// [`OnDeadline::Partial`](crate::cancel::OnDeadline)). Submodularity
    /// makes the prefix a valid anytime answer: it is byte-for-byte a
    /// prefix of what the uncancelled run would have selected and carries
    /// greedy's `(1 - 1/e)` guarantee at its own (smaller) budget.
    Partial {
        /// Why the run stopped early.
        cause: CancelCause,
    },
}

/// Result of a Grain selection run.
#[derive(Clone, Debug)]
pub struct SelectionOutcome {
    /// Selected nodes in pick order (`|S| <= budget`).
    pub selected: Vec<u32>,
    /// `F(S)` after each pick.
    pub objective_trace: Vec<f64>,
    /// Final activated set `σ(S)`, sorted.
    pub sigma: Vec<u32>,
    /// Final unnormalized diversity value `D(S)`.
    pub diversity_value: f64,
    /// Marginal-gain evaluations spent (CELF efficiency metric).
    pub evaluations: usize,
    /// Candidate count after §3.4 pruning.
    pub candidates_after_prune: usize,
    /// Wall-clock breakdown.
    pub timings: SelectionTimings,
    /// Whether the run completed or degraded to an anytime prefix.
    pub completion: Completion,
}

impl SelectionOutcome {
    /// True if this outcome is an anytime prefix from a cancelled run
    /// rather than the full-budget selection.
    pub fn is_partial(&self) -> bool {
        matches!(self.completion, Completion::Partial { .. })
    }

    /// Budget-free stopping rule: the length of the selection prefix whose
    /// picks each improved `F(S)` by at least `min_gain`.
    ///
    /// Because greedy gains are nonincreasing (submodularity), once a pick
    /// falls below `min_gain` every later pick does too — so callers can
    /// over-provision the budget and truncate:
    /// `&outcome.selected[..outcome.effective_budget(1e-4)]`.
    pub fn effective_budget(&self, min_gain: f64) -> usize {
        let mut prev = 0.0f64;
        for (i, &value) in self.objective_trace.iter().enumerate() {
            if value - prev < min_gain {
                return i;
            }
            prev = value;
        }
        self.objective_trace.len()
    }

    /// The selection prefix chosen by [`SelectionOutcome::effective_budget`].
    pub fn effective_selection(&self, min_gain: f64) -> &[u32] {
        &self.selected[..self.effective_budget(min_gain)]
    }
}

/// Grain node selector (the paper's contribution, ready to run).
#[derive(Clone, Debug, Default)]
pub struct GrainSelector {
    config: GrainConfig,
}

impl GrainSelector {
    /// Selector with an explicit configuration, rejecting configurations
    /// that fail [`GrainConfig::validate`].
    pub fn new(config: GrainConfig) -> GrainResult<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Selector with an explicit configuration, skipping validation.
    ///
    /// Intended for constants already known to be valid;
    /// [`GrainSelector::engine`] still validates when it builds the
    /// engine and reports an invalid configuration as a typed error.
    #[must_use]
    pub fn new_unchecked(config: GrainConfig) -> Self {
        Self { config }
    }

    /// The paper's "Grain (ball-D)" selector with Appendix A.4 defaults.
    #[must_use]
    pub fn ball_d() -> Self {
        Self::new_unchecked(GrainConfig::ball_d())
    }

    /// The paper's "Grain (NN-D)" selector with Appendix A.4 defaults.
    #[must_use]
    pub fn nn_d() -> Self {
        Self::new_unchecked(GrainConfig::nn_d())
    }

    /// The active configuration.
    pub fn config(&self) -> &GrainConfig {
        &self.config
    }

    /// A warm [`SelectionEngine`] over `graph`/`features` with this
    /// selector's configuration — the amortized path for repeated
    /// selections on one corpus. The corpus is cloned into the engine;
    /// use [`SelectionEngine::over`] with `Arc` handles to share instead.
    pub fn engine(&self, graph: &Graph, features: &DenseMatrix) -> GrainResult<SelectionEngine> {
        SelectionEngine::new(self.config, graph, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GrainVariant, GreedyAlgorithm, PruneStrategy};
    use grain_graph::generators::{self, SbmConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// One-shot selection through a fresh engine.
    fn one_shot(
        config: GrainConfig,
        g: &Graph,
        x: &DenseMatrix,
        candidates: &[u32],
        budget: usize,
    ) -> SelectionOutcome {
        SelectionEngine::new(config, g, x)
            .unwrap()
            .select(candidates, budget)
    }

    fn dataset(seed: u64) -> (Graph, DenseMatrix) {
        let cfg = SbmConfig {
            block_sizes: vec![50, 50, 50],
            mean_degree_in: 6.0,
            mean_degree_out: 1.0,
            degree_exponent: 0.0,
        };
        let (g, labels) = generators::degree_corrected_sbm(&cfg, seed);
        // Class-correlated features + noise.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let d = 8usize;
        let mut x = DenseMatrix::zeros(g.num_nodes(), d);
        for (v, &label) in labels.iter().enumerate() {
            let c = label as usize;
            let row = x.row_mut(v);
            for (j, value) in row.iter_mut().enumerate() {
                let base = if j % 3 == c { 1.0 } else { 0.1 };
                *value = base + rng.random::<f32>() * 0.2;
            }
        }
        (g, x)
    }

    #[test]
    fn selects_exactly_budget_nodes() {
        let (g, x) = dataset(1);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let out = one_shot(GrainConfig::ball_d(), &g, &x, &candidates, 12);
        assert_eq!(out.selected.len(), 12);
        // No duplicates.
        let mut uniq = out.selected.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 12);
    }

    #[test]
    fn selector_engine_constructor_matches_direct_engine() {
        // The facade's engine constructor must be a pure pass-through.
        let (g, x) = dataset(1);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut via_facade = GrainSelector::ball_d().engine(&g, &x).unwrap();
        let facade = via_facade.select(&candidates, 12);
        let direct = one_shot(GrainConfig::ball_d(), &g, &x, &candidates, 12);
        assert_eq!(facade.selected, direct.selected);
        assert_eq!(facade.sigma, direct.sigma);
        assert_eq!(facade.objective_trace, direct.objective_trace);
    }

    #[test]
    fn objective_trace_is_monotone() {
        let (g, x) = dataset(2);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let out = one_shot(GrainConfig::ball_d(), &g, &x, &candidates, 10);
        for w in out.objective_trace.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "trace decreased: {:?}",
                out.objective_trace
            );
        }
    }

    #[test]
    fn plain_and_lazy_select_identical_sets() {
        let (g, x) = dataset(3);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut cfg = GrainConfig::ball_d();
        cfg.algorithm = GreedyAlgorithm::Plain;
        let plain = one_shot(cfg, &g, &x, &candidates, 8);
        cfg.algorithm = GreedyAlgorithm::Lazy;
        let lazy = one_shot(cfg, &g, &x, &candidates, 8);
        assert_eq!(plain.selected, lazy.selected);
        assert!(lazy.evaluations <= plain.evaluations);
    }

    #[test]
    fn grain_beats_random_on_sigma_coverage() {
        let (g, x) = dataset(4);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let out = one_shot(GrainConfig::ball_d(), &g, &x, &candidates, 10);
        // Random baselines: mean sigma over several draws.
        let idx = SelectionEngine::new(GrainConfig::ball_d(), &g, &x)
            .unwrap()
            .activation_index()
            .clone();
        let mut rng = StdRng::seed_from_u64(99);
        let mut random_sigma = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let mut pick: Vec<u32> = Vec::new();
            while pick.len() < 10 {
                let c = rng.random_range(0..g.num_nodes() as u32);
                if !pick.contains(&c) {
                    pick.push(c);
                }
            }
            random_sigma += idx.sigma_size(&pick) as f64;
        }
        random_sigma /= trials as f64;
        assert!(
            out.sigma.len() as f64 > random_sigma,
            "grain sigma {} <= random mean {random_sigma}",
            out.sigma.len()
        );
    }

    #[test]
    fn candidates_restrict_selection() {
        let (g, x) = dataset(5);
        let candidates: Vec<u32> = (0..30u32).collect();
        let out = one_shot(GrainConfig::ball_d(), &g, &x, &candidates, 5);
        assert!(out.selected.iter().all(|&s| s < 30));
    }

    #[test]
    fn pruning_shrinks_pool_but_still_selects() {
        let (g, x) = dataset(6);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut cfg = GrainConfig::ball_d();
        cfg.prune = Some(PruneStrategy::Degree { keep_fraction: 0.2 });
        let out = one_shot(cfg, &g, &x, &candidates, 6);
        assert_eq!(out.candidates_after_prune, 30);
        assert_eq!(out.selected.len(), 6);
    }

    #[test]
    fn all_variants_run() {
        let (g, x) = dataset(7);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        for variant in [
            GrainVariant::Full,
            GrainVariant::NoDiversity,
            GrainVariant::NoMagnitude,
            GrainVariant::ClassicCoverage,
        ] {
            let out = one_shot(GrainConfig::ablation(variant), &g, &x, &candidates, 5);
            assert_eq!(out.selected.len(), 5, "variant {variant:?}");
        }
    }

    #[test]
    fn nn_d_runs_and_differs_from_ball_d() {
        // The two diversity functions value spread differently; across a
        // few random graphs at least one selection must diverge (on any
        // single instance they may legitimately coincide).
        let mut diverged = false;
        for seed in 8..12 {
            let (g, x) = dataset(seed);
            let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
            let ball = one_shot(GrainConfig::ball_d(), &g, &x, &candidates, 10);
            let nn = one_shot(GrainConfig::nn_d(), &g, &x, &candidates, 10);
            assert_eq!(nn.selected.len(), 10);
            assert!(nn.diversity_value > 0.0);
            if ball.selected != nn.selected {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "ball-D and NN-D agreed on every instance");
    }

    #[test]
    fn effective_budget_truncates_flat_tail() {
        let (g, x) = dataset(10);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        // Over-provision: ask for far more nodes than the objective needs.
        let out = one_shot(GrainConfig::ball_d(), &g, &x, &candidates, 120);
        let effective = out.effective_budget(1e-3);
        assert!(effective <= out.selected.len());
        assert!(effective > 0);
        assert_eq!(out.effective_selection(1e-3).len(), effective);
        // A stricter threshold can only shorten the prefix.
        assert!(out.effective_budget(1e-2) <= effective);
        // An impossible threshold keeps nothing.
        assert_eq!(out.effective_budget(f64::INFINITY), 0);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let (g, x) = dataset(9);
        let candidates: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let a = one_shot(GrainConfig::ball_d(), &g, &x, &candidates, 7);
        let b = one_shot(GrainConfig::ball_d(), &g, &x, &candidates, 7);
        assert_eq!(a.selected, b.selected);
    }
}

//! Submodular diversity functions over the aggregated feature space (§3.3).
//!
//! Both functions consume *newly activated* node batches: the greedy loop
//! asks "how much diversity would σ(S) gain if these nodes joined it?",
//! first hypothetically ([`DiversityFunction::marginal_gain`]) and then for
//! real ([`DiversityFunction::commit`]). This incremental protocol is what
//! makes Algorithm 1 affordable — diversity never re-scans σ(S).

mod ball;
mod nn;

pub use ball::BallDiversity;
pub use nn::NnDiversity;

/// A monotone submodular diversity function `D(σ(S))` evaluated
/// incrementally over batches of newly activated nodes.
pub trait DiversityFunction {
    /// Diversity gain if `newly_activated` joined the activated set.
    ///
    /// Takes `&mut self` so implementations may use internal scratch
    /// buffers (the evaluation itself is logically read-only: observable
    /// state is unchanged afterwards, and repeated calls return the same
    /// value).
    fn marginal_gain(&mut self, newly_activated: &[u32]) -> f64;

    /// Commits `newly_activated` into the activated set.
    fn commit(&mut self, newly_activated: &[u32]);

    /// Current value `D(σ(S))`.
    fn value(&self) -> f64;

    /// Normalization constant `D̂` of Eq. 11 (maximum attainable value).
    fn upper_bound(&self) -> f64;
}

impl DiversityFunction for Box<dyn DiversityFunction + Send + '_> {
    fn marginal_gain(&mut self, newly_activated: &[u32]) -> f64 {
        (**self).marginal_gain(newly_activated)
    }

    fn commit(&mut self, newly_activated: &[u32]) {
        (**self).commit(newly_activated)
    }

    fn value(&self) -> f64 {
        (**self).value()
    }

    fn upper_bound(&self) -> f64 {
        (**self).upper_bound()
    }
}

/// A zero diversity function for the "No Diversity" ablation: always 0, so
/// the DIM objective degenerates to pure influence maximization.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullDiversity;

impl DiversityFunction for NullDiversity {
    fn marginal_gain(&mut self, _newly_activated: &[u32]) -> f64 {
        0.0
    }

    fn commit(&mut self, _newly_activated: &[u32]) {}

    fn value(&self) -> f64 {
        0.0
    }

    fn upper_bound(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_diversity_is_inert() {
        let mut d = NullDiversity;
        assert_eq!(d.marginal_gain(&[1, 2, 3]), 0.0);
        d.commit(&[1, 2, 3]);
        assert_eq!(d.value(), 0.0);
        assert_eq!(d.upper_bound(), 1.0);
    }
}

//! Nearest-neighbor diversity — Definition 3.4.
//!
//! `D_NN(S) = Σ_{w ∈ V} (d_max − min_{v ∈ σ(S)} d(X^(k)_w, X^(k)_v))`:
//! every node contributes how close its nearest *activated* node is.
//! The incremental state is the per-node minimum distance array `mind`;
//! a batch of newly activated nodes can only lower entries, and the gain is
//! the total reduction. With σ(S) = ∅ the minimum is taken as `d_max`
//! so `D_NN(∅) = 0`.

use super::DiversityFunction;
use grain_linalg::{distance, DenseMatrix};
use std::sync::Arc;

/// Incremental nearest-activated-neighbor diversity.
///
/// The embedding is shared (`Arc`), so per-selection instances — the warm
/// `SelectionEngine` builds one per `select` call — copy only the `mind`
/// state array, not the `n × d` matrix.
#[derive(Clone, Debug)]
pub struct NnDiversity {
    /// L2-normalized embedding rows.
    embedding: Arc<DenseMatrix>,
    /// Current `min_{v in σ(S)} d(w, v)` per node `w`.
    mind: Vec<f32>,
    /// `d_max` constant.
    dmax: f32,
    /// Running `D_NN` value.
    value: f64,
}

impl NnDiversity {
    /// Builds from an L2-normalized embedding.
    ///
    /// `d_max` is computed exactly up to `exact_limit` rows and estimated by
    /// anchor sampling beyond (see
    /// [`grain_linalg::distance::max_pairwise_distance`]).
    pub fn new(embedding: DenseMatrix, exact_limit: usize) -> Self {
        let dmax = distance::max_pairwise_distance(&embedding, exact_limit);
        Self::from_parts(Arc::new(embedding), dmax)
    }

    /// Builds from a shared embedding and precomputed `d_max` — the warm
    /// engine path, which caches both across selections instead of copying
    /// the matrix and rescanning pairs.
    pub fn from_parts(embedding: Arc<DenseMatrix>, dmax: f32) -> Self {
        let dmax = dmax.max(f32::EPSILON);
        let n = embedding.rows();
        Self {
            embedding,
            mind: vec![dmax; n],
            dmax,
            value: 0.0,
        }
    }

    /// The `d_max` normalization constant in use.
    pub fn dmax(&self) -> f32 {
        self.dmax
    }

    /// Current nearest-activated distance of node `w`.
    pub fn min_distance(&self, w: usize) -> f32 {
        self.mind[w]
    }

    /// Distance reduction at node `w` if `batch` joined σ(S).
    fn reduction_at(&self, w: usize, batch: &[u32]) -> f64 {
        let cur = self.mind[w];
        if cur <= 0.0 {
            return 0.0;
        }
        let row = self.embedding.row(w);
        let mut best = cur;
        for &v in batch {
            let d = distance::grain_distance(row, self.embedding.row(v as usize));
            if d < best {
                best = d;
                if best <= 0.0 {
                    break;
                }
            }
        }
        (cur - best) as f64
    }
}

impl DiversityFunction for NnDiversity {
    fn marginal_gain(&mut self, newly_activated: &[u32]) -> f64 {
        if newly_activated.is_empty() {
            return 0.0;
        }
        let n = self.embedding.rows();
        // Parallel over nodes: the reduction sum is independent per node.
        let gains = grain_linalg::par::par_map(n, 64, |w| self.reduction_at(w, newly_activated));
        gains.into_iter().sum()
    }

    fn commit(&mut self, newly_activated: &[u32]) {
        if newly_activated.is_empty() {
            return;
        }
        let n = self.embedding.rows();
        let mut gained = 0.0f64;
        for w in 0..n {
            let cur = self.mind[w];
            if cur <= 0.0 {
                continue;
            }
            let row = self.embedding.row(w);
            let mut best = cur;
            for &v in newly_activated {
                let d = distance::grain_distance(row, self.embedding.row(v as usize));
                if d < best {
                    best = d;
                }
            }
            if best < cur {
                gained += (cur - best) as f64;
                self.mind[w] = best;
            }
        }
        self.value += gained;
    }

    fn value(&self) -> f64 {
        self.value
    }

    fn upper_bound(&self) -> f64 {
        // All distances driven to zero: D̂ = n · d_max.
        self.embedding.rows() as f64 * self.dmax as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_linalg::ops;

    fn embedding() -> DenseMatrix {
        let mut m = DenseMatrix::from_vec(4, 2, vec![1.0, 0.0, 0.9, 0.43, 0.0, 1.0, -1.0, 0.0]);
        ops::l2_normalize_rows(&mut m);
        m
    }

    #[test]
    fn empty_sigma_has_zero_diversity() {
        let d = NnDiversity::new(embedding(), 100);
        assert_eq!(d.value(), 0.0);
        assert!(d.dmax() > 0.99); // antipodal pair present
    }

    #[test]
    fn marginal_equals_commit_delta() {
        let mut d = NnDiversity::new(embedding(), 100);
        let batch = [0u32];
        let gain = d.marginal_gain(&batch);
        d.commit(&batch);
        assert!((d.value() - gain).abs() < 1e-6);
        let batch2 = [2u32];
        let gain2 = d.marginal_gain(&batch2);
        d.commit(&batch2);
        assert!((d.value() - gain - gain2).abs() < 1e-6);
    }

    #[test]
    fn activating_everything_approaches_upper_bound_shape() {
        let mut d = NnDiversity::new(embedding(), 100);
        d.commit(&[0, 1, 2, 3]);
        // Every node now has an activated node at distance 0 (itself).
        assert!((d.value() - 4.0 * d.dmax() as f64).abs() < 1e-5);
        assert!((d.upper_bound() - 4.0 * d.dmax() as f64).abs() < 1e-9);
    }

    #[test]
    fn far_node_adds_more_diversity_than_near_duplicate() {
        let d = NnDiversity::new(embedding(), 100);
        let mut d2 = d.clone();
        d2.commit(&[0]);
        // Node 1 is close to 0; node 3 is antipodal.
        let near = d2.marginal_gain(&[1]);
        let far = d2.marginal_gain(&[3]);
        assert!(far > near, "far gain {far} <= near gain {near}");
    }

    #[test]
    fn diminishing_returns_for_repeated_batches() {
        let mut d = NnDiversity::new(embedding(), 100);
        let g1 = d.marginal_gain(&[1]);
        d.commit(&[0]);
        let g2 = d.marginal_gain(&[1]);
        assert!(g2 <= g1 + 1e-9);
    }

    #[test]
    fn min_distance_tracks_committed_nodes() {
        let mut d = NnDiversity::new(embedding(), 100);
        d.commit(&[2]);
        assert_eq!(d.min_distance(2), 0.0);
        assert!(d.min_distance(0) > 0.0);
    }
}

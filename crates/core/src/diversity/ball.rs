//! Coverage-based (ball) diversity — Definition 3.6.
//!
//! Each activated node `u` covers the radius-`r` ball
//! `G_u = {w : d(X^(k)_u, X^(k)_w) <= r}` in the normalized aggregated
//! feature space; `D_ball(S) = |∪_{u ∈ σ(S)} G_u|`. Ball membership lists
//! are precomputed once; the incremental state is a covered bitmap, exactly
//! like the influence coverage itself (the influence function is the `r=0`
//! special case, as the paper notes).

use super::DiversityFunction;
use grain_linalg::{distance, Bitset, DenseMatrix};
use std::sync::Arc;

/// Incremental ball-coverage diversity.
///
/// Ball membership lists are shared (`Arc`), so per-selection instances —
/// the warm `SelectionEngine` builds one per `select` call — copy only the
/// covered bitmap, not the precompute. Both the covered flags and the
/// batch-gain scratch are packed u64 bitsets, and the scratch is undone
/// through a touched-index list, so a marginal-gain evaluation allocates
/// nothing and touches memory proportional to the batch's ball mass.
#[derive(Clone, Debug)]
pub struct BallDiversity {
    /// `balls[u]` = nodes within radius `r` of `u` (sorted, includes `u`).
    balls: Arc<Vec<Vec<u32>>>,
    covered: Bitset,
    upper_bound: usize,
    /// Scratch for multi-ball batch gains: nodes already counted in the
    /// current evaluation. Always all-clear between calls.
    visited: Bitset,
    /// Which `visited` bits the current evaluation set (to undo them).
    touched: Vec<u32>,
}

impl BallDiversity {
    /// Precomputes ball membership from an L2-normalized embedding.
    ///
    /// `embedding` must contain L2-normalized rows of `X^(k)` (use
    /// [`grain_linalg::distance::normalized_embedding`]).
    pub fn new(embedding: &DenseMatrix, radius: f32) -> Self {
        let balls = distance::radius_neighbors(embedding, radius);
        Self::from_shared(Arc::new(balls), embedding.rows())
    }

    /// Builds from explicit ball membership lists (used by tests and by
    /// callers that cache the radius query).
    pub fn from_balls(balls: Vec<Vec<u32>>, n: usize) -> Self {
        Self::from_shared(Arc::new(balls), n)
    }

    /// Builds from shared ball membership lists without copying them.
    pub fn from_shared(balls: Arc<Vec<Vec<u32>>>, n: usize) -> Self {
        let upper_bound = Self::union_size(&balls, n);
        Self::from_shared_with_bound(balls, n, upper_bound)
    }

    /// `|∪_u G_u|` of the given lists — the D̂ normalization constant.
    /// With self-inclusive balls this is `n`, but compute it honestly in
    /// case custom balls omit members.
    pub fn union_size(balls: &[Vec<u32>], n: usize) -> usize {
        let mut seen = vec![false; n];
        for ball in balls {
            for &w in ball {
                seen[w as usize] = true;
            }
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// Builds from shared lists and their precomputed [`Self::union_size`]
    /// — the warm-engine path, which touches no list at construction.
    pub fn from_shared_with_bound(balls: Arc<Vec<Vec<u32>>>, n: usize, upper_bound: usize) -> Self {
        Self {
            balls,
            covered: Bitset::new(n),
            upper_bound,
            visited: Bitset::new(n),
            touched: Vec::new(),
        }
    }

    /// Ball membership of node `u`.
    pub fn ball(&self, u: usize) -> &[u32] {
        &self.balls[u]
    }

    /// Mean ball size (diagnostic for radius tuning).
    pub fn mean_ball_size(&self) -> f64 {
        if self.balls.is_empty() {
            return 0.0;
        }
        self.balls.iter().map(Vec::len).sum::<usize>() as f64 / self.balls.len() as f64
    }
}

impl DiversityFunction for BallDiversity {
    fn marginal_gain(&mut self, newly_activated: &[u32]) -> f64 {
        // Union gain of the balls of all newly activated nodes. Within one
        // batch the same node may appear in several balls; the `visited`
        // scratch bitset dedupes without allocating, and its touched bits
        // are undone afterwards so the evaluation is observably read-only.
        match newly_activated {
            [] => 0.0,
            [single] => self.balls[*single as usize]
                .iter()
                .filter(|&&w| !self.covered.contains(w as usize))
                .count() as f64,
            many => {
                let mut fresh = 0usize;
                for &u in many {
                    for &w in &self.balls[u as usize] {
                        if !self.covered.contains(w as usize) && self.visited.insert(w as usize) {
                            self.touched.push(w);
                            fresh += 1;
                        }
                    }
                }
                for &w in &self.touched {
                    self.visited.remove(w as usize);
                }
                self.touched.clear();
                fresh as f64
            }
        }
    }

    fn commit(&mut self, newly_activated: &[u32]) {
        for &u in newly_activated {
            for &w in &self.balls[u as usize] {
                self.covered.insert(w as usize);
            }
        }
    }

    fn value(&self) -> f64 {
        self.covered.count_ones() as f64
    }

    fn upper_bound(&self) -> f64 {
        self.upper_bound.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_linalg::ops;

    fn embedding() -> DenseMatrix {
        // Three tight points near (1,0) and one far point near (0,1).
        let mut m =
            DenseMatrix::from_vec(4, 2, vec![1.0, 0.0, 0.999, 0.045, 0.998, 0.063, 0.0, 1.0]);
        ops::l2_normalize_rows(&mut m);
        m
    }

    #[test]
    fn balls_cover_close_points() {
        let d = BallDiversity::new(&embedding(), 0.05);
        assert!(d.ball(0).contains(&1));
        assert!(!d.ball(0).contains(&3));
        assert!(d.ball(3).contains(&3));
    }

    #[test]
    fn marginal_then_commit_matches_value() {
        let mut d = BallDiversity::new(&embedding(), 0.05);
        let g0 = d.marginal_gain(&[0]);
        d.commit(&[0]);
        assert_eq!(d.value(), g0);
        let g3 = d.marginal_gain(&[3]);
        d.commit(&[3]);
        assert_eq!(d.value(), g0 + g3);
    }

    #[test]
    fn batch_gain_dedupes_overlapping_balls() {
        let mut d = BallDiversity::new(&embedding(), 0.05);
        // Nodes 0 and 1 share most of their balls; the batch gain must not
        // double-count.
        let joint = d.marginal_gain(&[0, 1]);
        let g0 = d.marginal_gain(&[0]);
        let g1 = d.marginal_gain(&[1]);
        assert!(joint <= g0 + g1);
        assert!(joint >= g0.max(g1));
    }

    #[test]
    fn commit_is_idempotent() {
        let mut d = BallDiversity::new(&embedding(), 0.05);
        d.commit(&[0]);
        let v = d.value();
        d.commit(&[0]);
        assert_eq!(d.value(), v);
    }

    #[test]
    fn upper_bound_caps_value() {
        let mut d = BallDiversity::new(&embedding(), 0.5);
        d.commit(&[0, 1, 2, 3]);
        assert!(d.value() <= d.upper_bound());
        assert_eq!(d.upper_bound(), 4.0);
    }

    #[test]
    fn radius_zero_reduces_to_influence_special_case() {
        // The paper: |sigma(S)| is D_ball with r = 0 (self-coverage only).
        let d = BallDiversity::new(&embedding(), 0.0);
        for u in 0..4 {
            // With r=0 only (near-)identical rows coincide; here all distinct.
            assert_eq!(d.ball(u).len(), 1, "ball of {u}: {:?}", d.ball(u));
        }
    }

    #[test]
    fn empty_batch_gains_nothing() {
        let mut d = BallDiversity::new(&embedding(), 0.1);
        assert_eq!(d.marginal_gain(&[]), 0.0);
    }

    #[test]
    fn batch_gain_is_repeatable_and_leaves_no_scratch_residue() {
        // The scratch bitset must be fully undone between evaluations, so
        // re-evaluating any batch (including after commits) is stable.
        let mut d = BallDiversity::new(&embedding(), 0.05);
        let first = d.marginal_gain(&[0, 1, 2]);
        let second = d.marginal_gain(&[0, 1, 2]);
        assert_eq!(first, second);
        d.commit(&[3]);
        let after = d.marginal_gain(&[0, 1, 2]);
        assert_eq!(after, d.marginal_gain(&[0, 1, 2]));
        assert!(after <= first);
    }
}

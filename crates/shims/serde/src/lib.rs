//! Offline shim for `serde`.
//!
//! Re-exports the no-op derive macros and defines empty marker traits so
//! `use serde::{Deserialize, Serialize}` resolves both the macro and the
//! trait name, exactly as with the real crate. Swap this path dependency
//! for the real `serde` (same version key in the workspace manifest) once
//! network access or vendoring is available; no source change needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

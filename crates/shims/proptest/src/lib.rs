//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Supports: the `proptest!` macro with per-block `#![proptest_config]`,
//! `prop_assert!` / `prop_assert_eq!`, numeric range strategies, tuple
//! strategies, `prop_map`, and `collection::vec`. Inputs are generated
//! from a deterministic per-test stream (seeded by the test name), so
//! failures reproduce exactly. Unlike the real crate there is **no
//! shrinking**: a failing case reports its case index and message only.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(off as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8 => u64, u16 => u64, u32 => u64, u64 => u64,
                             usize => u64, i32 => i64, i64 => i64);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Vector length specification: an exact `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// `(min, max)` bounds, max exclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy generating vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty size range for collection::vec");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.min..self.max).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-block configuration (subset of `proptest::test_runner`'s).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed `prop_assert!` (subset of `TestCaseError`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic SplitMix64 input stream, seeded by the test name so
    /// every test owns a stable, independent stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream for the named test.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name; any stable hash works.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The commonly `use`d surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Soft assertion: fails the current case without panicking the closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Soft equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Soft inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

/// The `proptest!` block: expands each `fn name(arg in strategy, ...)` into
/// a `#[test]` that replays `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} of `{}` failed: {}",
                               case + 1, config.cases, stringify!($name), e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_vec_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..500 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let v = crate::collection::vec(-1.0f32..1.0, 2usize..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            let exact = crate::collection::vec(0u64..10, 6usize).generate(&mut rng);
            assert_eq!(exact.len(), 6);
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("compose");
        let s = (0u32..4, 0u32..4).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) <= 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(a in 0u64..100, b in 1usize..4) {
            prop_assert!(a < 100, "a was {}", a);
            prop_assert_eq!(b.min(3), b);
        }
    }
}

//! Offline shim for the `crossbeam` scoped-thread API.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`; std has shipped structured scoped threads
//! since 1.63, so the shim delegates to `std::thread::scope`.
//!
//! Behavioral difference kept intentionally: when a spawned thread panics
//! and the handle was not joined, std re-raises the panic after the scope
//! instead of returning `Err` — callers treat both as fatal, so the
//! `.expect(...)` they attach simply never fires on the std path.

pub mod thread {
    use std::any::Any;

    /// Spawn handle mirroring `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Scope mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// The argument crossbeam passes to spawned closures (a scope handle
    /// for nested spawns). Nothing in this workspace nests spawns, so the
    /// shim passes an opaque placeholder; closures bind it as `|_|`.
    pub struct NestedScope {
        _private: (),
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure may borrow from the
        /// enclosing stack frame.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(NestedScope { _private: () })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; all
    /// spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let mut sums = [0u64; 2];
        let (a, b) = sums.split_at_mut(1);
        super::thread::scope(|scope| {
            let h1 = scope.spawn(|_| a[0] = data[..2].iter().sum());
            let h2 = scope.spawn(|_| b[0] = data[2..].iter().sum());
            h1.join().unwrap();
            h2.join().unwrap();
        })
        .unwrap();
        assert_eq!(sums, [3, 7]);
    }
}

//! Offline shim for the `crossbeam` scoped-thread and channel APIs.
//!
//! The workspace uses `crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join` (std has shipped structured scoped threads
//! since 1.63, so that part delegates to `std::thread::scope`) and the
//! [`channel`] subset `bounded` / `Sender::{send, try_send}` /
//! `Receiver::{recv, try_recv, recv_timeout}` with the matching error
//! types — the
//! rendezvous primitive behind `grain_core::scheduler::Ticket`. The
//! channel is a straightforward `Mutex<VecDeque>` + two condvars; it
//! keeps crossbeam's disconnect semantics (buffered messages drain before
//! `recv` reports `RecvError`; `send` fails once every receiver is gone).
//!
//! Behavioral differences kept intentionally: when a spawned thread
//! panics and the handle was not joined, std re-raises the panic after
//! the scope instead of returning `Err` — callers treat both as fatal,
//! so the `.expect(...)` they attach simply never fires on the std path.
//! Zero-capacity (rendezvous) channels are not implemented; no use site
//! needs them (shim policy: grow the surface only when one does).

pub mod thread {
    use std::any::Any;

    /// Spawn handle mirroring `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Scope mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// The argument crossbeam passes to spawned closures (a scope handle
    /// for nested spawns). Nothing in this workspace nests spawns, so the
    /// shim passes an opaque placeholder; closures bind it as `|_|`.
    pub struct NestedScope {
        _private: (),
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure may borrow from the
        /// enclosing stack frame.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(NestedScope { _private: () })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing spawns are allowed; all
    /// spawned threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! MPMC channel shim mirroring `crossbeam_channel`'s bounded API.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Sender::try_send`]; carries the message back.
    pub enum TrySendError<T> {
        /// The channel buffer is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "Full(..)",
                TrySendError::Disconnected(_) => "Disconnected(..)",
            })
        }
    }

    /// Error returned by [`Receiver::recv`]: the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing buffered right now; senders may still deliver.
        Empty,
        /// Nothing buffered and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Nothing buffered and every sender is gone.
        Disconnected,
    }

    /// Sending half of a bounded channel; clonable (MPMC).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of a bounded channel; clonable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded MPMC channel holding up to `capacity` messages.
    ///
    /// # Panics
    /// Panics on `capacity == 0`: the shim does not implement crossbeam's
    /// zero-capacity rendezvous mode (no workspace use site needs it).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            capacity > 0,
            "the crossbeam shim does not implement zero-capacity rendezvous channels"
        );
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity.min(64)),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is buffered; fails (returning the
        /// message) once every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if state.queue.len() < state.capacity {
                    state.queue.push_back(msg);
                    drop(state);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .inner
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Buffers the message if there is room right now.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.inner.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if state.queue.len() == state.capacity {
                return Err(TrySendError::Full(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; buffered messages drain before
        /// a disconnect is reported.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks until a message arrives or `timeout` elapses. Buffered
        /// messages drain before a disconnect is reported; a disconnect
        /// with an empty buffer is reported immediately, not after the
        /// timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.inner.lock();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, wait) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
                if wait.timed_out() && state.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Pops a buffered message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.lock();
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake every blocked receiver so it can observe the
                // disconnect instead of waiting forever.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let mut sums = [0u64; 2];
        let (a, b) = sums.split_at_mut(1);
        super::thread::scope(|scope| {
            let h1 = scope.spawn(|_| a[0] = data[..2].iter().sum());
            let h2 = scope.spawn(|_| b[0] = data[2..].iter().sum());
            h1.join().unwrap();
            h2.join().unwrap();
        })
        .unwrap();
        assert_eq!(sums, [3, 7]);
    }

    #[test]
    fn bounded_channel_round_trips_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(2);
        super::thread::scope(|scope| {
            let tx2 = tx.clone();
            scope.spawn(move |_| {
                for v in 0..10 {
                    tx2.send(v).unwrap();
                }
            });
            let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(
            tx.try_send(2),
            Err(channel::TrySendError::Full(2))
        ));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(rx);
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Disconnected(3))
        ));
    }

    #[test]
    fn recv_timeout_times_out_delivers_and_reports_disconnect() {
        use std::time::Duration;
        let (tx, rx) = channel::bounded::<u8>(2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(5));
        // A message sent from another thread mid-wait is delivered.
        super::thread::scope(|scope| {
            let tx2 = tx.clone();
            scope.spawn(move |_| {
                std::thread::sleep(Duration::from_millis(10));
                tx2.send(9).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        })
        .unwrap();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn buffered_messages_drain_before_disconnect() {
        let (tx, rx) = channel::bounded::<u8>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}

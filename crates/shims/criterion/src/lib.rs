//! Offline shim for the subset of the `criterion` bench API the workspace
//! uses: `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` + `sample_size` + `bench_with_input` + `finish`,
//! `BenchmarkId`, and `Bencher::iter`.
//!
//! Reporting is deliberately simple — per-benchmark min/median/mean over
//! `sample_size` timed samples, printed to stdout — with no statistical
//! regression analysis, plots, or saved baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once per sample and records each duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup pass so lazy initialization and cold caches
        // do not land in the first sample.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{group}/{id}: min {:?}  median {:?}  mean {:?}  ({} samples)",
        sorted[0],
        median,
        mean,
        sorted.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// Ends the group (explicit for API parity; nothing buffered).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        f(&mut b);
        report("bench", &id.to_string(), &b.samples);
        self
    }
}

/// Declares a bench group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_record_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        // warmup + 3 samples
        assert_eq!(runs, 4);
    }
}

//! Offline shim for the subset of the `rand` 0.9 API this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::random`, `Rng::random_range`,
//! `Rng::random_bool`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — statistically solid for experiment
//! seeding and synthetic-data generation, deliberately not cryptographic.
//! Streams differ from the real `StdRng` (ChaCha12); everything in the
//! repo treats seeds as opaque reproducibility handles, so only
//! determinism matters, and that is guaranteed: the same seed yields the
//! same stream on every platform.

/// Low-level entropy source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample of the "standard" distribution of `T`
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait StandardSample {
    /// Draws one standard-distribution sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounds the sample without modulo bias
                // beyond 2^-64, plenty for experiment workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in random_range");
                // Two's-complement span; wraps to 0 only for a full
                // 64-bit domain, where any 64-bit draw is the answer.
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.random_range(0usize..=4);
            assert!(z <= 4);
            // MAX-bounded inclusive ranges must not overflow the span.
            let m = rng.random_range(u64::MAX - 3..=u64::MAX);
            assert!(m >= u64::MAX - 3);
            let full = rng.random_range(u64::MIN..=u64::MAX);
            let _ = full;
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn float_unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: f64 = (0..4000).map(|_| rng.random::<f64>()).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "unit mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }
}

//! Offline shim for `serde_derive`.
//!
//! The workspace builds with no network access, so the real serde proc
//! macros are unavailable. Nothing in the repo serializes at runtime yet —
//! the derives exist so model/config types are serialization-ready — hence
//! the shim derives validate nothing and emit no code. The `serde(...)`
//! helper attribute is accepted (and ignored) for forward compatibility.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Feature-influence model and activation machinery (Grain §3.1–3.2).
//!
//! Grain measures the influence of node `u` on node `v` as the L1 norm of
//! the expected Jacobian of the k-step aggregated feature of `v` with
//! respect to the input feature of `u` (Definition 3.1). For the
//! generalized transition matrices of Table 1 this equals the `(v, u)`
//! entry of `T^k`, i.e. the total probability mass of length-`k` influence
//! paths from `v` to `u` (Eq. 9). After per-row L1 normalization (Eq. 8)
//! we obtain the *normalized influence* `I_v(u, k)`.
//!
//! * [`walk`] computes sparse normalized influence rows `I_v(·, k)` for all
//!   nodes, in parallel, with epsilon pruning,
//! * [`index`] inverts the rows into an *activation index*
//!   `act[u] = {v : I_v(u, k) > θ}` (Definition 3.2), turning `|σ(S)|`
//!   into an incrementally maintainable coverage function,
//! * [`coverage`] maintains `σ(S)` and marginal gains during greedy
//!   selection,
//! * [`theory`] offers empirical monotonicity/submodularity checkers used
//!   by the property-test suite (Theorems 3.3, 3.5, 3.7).
//!
//! ```
//! use grain_graph::{generators, transition_matrix, TransitionKind};
//! use grain_influence::{ActivationIndex, InfluenceRows, ThetaRule};
//!
//! let g = generators::erdos_renyi_gnm(60, 180, 5);
//! let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
//!
//! // Normalized influence rows I_v(·, 2) (Eq. 8/9) in flat CSR form:
//! // each node's influencers carry unit total mass after per-row L1
//! // normalization.
//! let rows = InfluenceRows::compute(&t, 2, 1e-4);
//! let mass: f32 = rows.row_values(0).iter().sum();
//! assert!((mass - 1.0).abs() < 1e-4);
//!
//! // Inverted into the activation index act[u] = {v : I_v(u, 2) > θ}
//! // (Definition 3.2), |σ(S)| becomes an incremental coverage count.
//! let index = ActivationIndex::build_with_rule(&rows, ThetaRule::RelativeToRowMax(0.25));
//! let sigma = index.sigma(&[0, 1]);
//! assert!(sigma.len() >= index.sigma(&[0]).len(), "coverage is monotone");
//! ```

pub mod coverage;
pub mod index;
pub mod theory;
pub mod walk;

pub use coverage::CoverageState;
pub use index::{ActivationIndex, ThetaRule};
pub use walk::InfluenceRows;

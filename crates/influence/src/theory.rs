//! Empirical checkers for the paper's structural theorems.
//!
//! Theorems 3.3, 3.5 and 3.7 claim that `|σ(S)|`, `D_NN(S)` and `D_ball(S)`
//! are nondecreasing and submodular. These helpers verify both properties
//! on explicit chains `S ⊆ T` for arbitrary set functions, and back the
//! proptest suites in `grain-core` and the root integration tests.

/// Outcome of a property check: `Ok(())` or a human-readable counterexample.
pub type PropertyResult = Result<(), String>;

/// Checks `f(S) <= f(T)` for the given nested pair.
///
/// The caller guarantees `subset ⊆ superset`; the function re-verifies it.
pub fn check_monotone_pair(
    f: &mut dyn FnMut(&[u32]) -> f64,
    subset: &[u32],
    superset: &[u32],
) -> PropertyResult {
    debug_assert!(
        is_subset(subset, superset),
        "check_monotone_pair needs S ⊆ T"
    );
    let fs = f(subset);
    let ft = f(superset);
    if fs <= ft + 1e-6 {
        Ok(())
    } else {
        Err(format!(
            "monotonicity violated: f({subset:?}) = {fs} > f({superset:?}) = {ft}"
        ))
    }
}

/// Checks the diminishing-returns inequality
/// `f(S ∪ {x}) - f(S) >= f(T ∪ {x}) - f(T)` for `S ⊆ T`, `x ∉ T`.
pub fn check_submodular_triple(
    f: &mut dyn FnMut(&[u32]) -> f64,
    subset: &[u32],
    superset: &[u32],
    x: u32,
) -> PropertyResult {
    debug_assert!(
        is_subset(subset, superset),
        "check_submodular_triple needs S ⊆ T"
    );
    debug_assert!(!superset.contains(&x), "x must lie outside T");
    let fs = f(subset);
    let ft = f(superset);
    let fsx = f(&with(subset, x));
    let ftx = f(&with(superset, x));
    let gain_s = fsx - fs;
    let gain_t = ftx - ft;
    if gain_s + 1e-6 >= gain_t {
        Ok(())
    } else {
        Err(format!(
            "submodularity violated at x={x}: gain over S={subset:?} is {gain_s}, \
             gain over T={superset:?} is {gain_t}"
        ))
    }
}

/// Exhaustively checks monotonicity + submodularity over every chain
/// `S ⊆ T ⊆ U` with `|U| <= universe.len()`. Exponential — only for small
/// universes in tests (≤ ~10 elements).
pub fn check_all_chains(f: &mut dyn FnMut(&[u32]) -> f64, universe: &[u32]) -> PropertyResult {
    let n = universe.len();
    assert!(
        n <= 12,
        "check_all_chains is exponential; universe too large"
    );
    let subsets: Vec<Vec<u32>> = (0..(1usize << n))
        .map(|mask| {
            (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| universe[i])
                .collect()
        })
        .collect();
    for (mi, s) in subsets.iter().enumerate() {
        for (mj, t) in subsets.iter().enumerate() {
            if mi & mj != mi {
                continue; // not a subset pair
            }
            check_monotone_pair(f, s, t)?;
            for &x in universe {
                if !t.contains(&x) {
                    check_submodular_triple(f, s, t, x)?;
                }
            }
        }
    }
    Ok(())
}

fn is_subset(a: &[u32], b: &[u32]) -> bool {
    a.iter().all(|x| b.contains(x))
}

fn with(s: &[u32], x: u32) -> Vec<u32> {
    let mut v = s.to_vec();
    v.push(x);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ActivationIndex;
    use crate::walk::InfluenceRows;
    use grain_graph::{generators, transition_matrix, TransitionKind};

    #[test]
    fn cardinality_is_monotone_submodular() {
        // f(S) = |S| (modular, hence submodular + monotone).
        let mut f = |s: &[u32]| s.len() as f64;
        assert!(check_all_chains(&mut f, &[0, 1, 2, 3]).is_ok());
    }

    #[test]
    fn detects_supermodular_function() {
        // f(S) = |S|^2 is strictly supermodular -> must be rejected.
        let mut f = |s: &[u32]| (s.len() * s.len()) as f64;
        assert!(check_all_chains(&mut f, &[0, 1, 2]).is_err());
    }

    #[test]
    fn detects_non_monotone_function() {
        let mut f = |s: &[u32]| -(s.len() as f64);
        let err = check_monotone_pair(&mut f, &[0], &[0, 1]).unwrap_err();
        assert!(err.contains("monotonicity"));
    }

    #[test]
    fn sigma_size_satisfies_theorem_3_3() {
        // Theorem 3.3 validated on a concrete random instance.
        let g = generators::erdos_renyi_gnm(25, 60, 11);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let idx = ActivationIndex::build(&InfluenceRows::compute(&t, 2, 0.0), 0.05);
        let universe: Vec<u32> = (0..8).collect();
        let mut f = |s: &[u32]| idx.sigma_size(s) as f64;
        check_all_chains(&mut f, &universe).unwrap();
    }
}

//! Incremental maintenance of `σ(S)` during greedy selection.
//!
//! Adding one seed `u` to `S` changes `σ(S)` by exactly the not-yet-covered
//! part of `act[u]`; this state tracks covered flags so each greedy round
//! costs `O(|act[u]|)` per evaluated candidate instead of recomputing the
//! union from scratch (the difference between `O(B·n·L)` and `O(B·n·L·B)`
//! overall).
//!
//! The covered flags live in a packed u64 [`Bitset`] (8× smaller than the
//! `Vec<bool>` it replaced — it must stay cache-resident at n=1e6), and the
//! `*_into` variants write newly activated nodes into a caller-owned
//! scratch buffer so the innermost greedy loop performs zero allocations.

use crate::index::ActivationIndex;
use grain_linalg::Bitset;

/// Mutable coverage state over an [`ActivationIndex`].
#[derive(Clone, Debug)]
pub struct CoverageState<'a> {
    index: &'a ActivationIndex,
    covered: Bitset,
    seeds: Vec<u32>,
}

impl<'a> CoverageState<'a> {
    /// Empty coverage (`S = ∅`).
    pub fn new(index: &'a ActivationIndex) -> Self {
        Self {
            index,
            covered: Bitset::new(index.num_nodes()),
            seeds: Vec::new(),
        }
    }

    /// The activation index this state tracks.
    pub fn index(&self) -> &'a ActivationIndex {
        self.index
    }

    /// `|σ(S)|` of the current seed set.
    pub fn covered_count(&self) -> usize {
        self.covered.count_ones()
    }

    /// Current seed set (in insertion order).
    pub fn seeds(&self) -> &[u32] {
        &self.seeds
    }

    /// True if `v` is activated by the current seed set.
    pub fn is_covered(&self, v: u32) -> bool {
        self.covered.contains(v as usize)
    }

    /// Marginal coverage gain `|σ(S ∪ {u})| - |σ(S)|` (read-only).
    pub fn marginal_gain(&self, u: u32) -> usize {
        self.index
            .activated_by(u as usize)
            .iter()
            .filter(|&&v| !self.covered.contains(v as usize))
            .count()
    }

    /// Appends the nodes `σ(S ∪ {u}) \ σ(S)` to `out` (cleared first) —
    /// the allocation-free form of [`CoverageState::newly_activated`] the
    /// greedy hot loop uses with a reused scratch buffer. Returns the
    /// count appended.
    pub fn newly_activated_into(&self, u: u32, out: &mut Vec<u32>) -> usize {
        out.clear();
        out.extend(
            self.index
                .activated_by(u as usize)
                .iter()
                .copied()
                .filter(|&v| !self.covered.contains(v as usize)),
        );
        out.len()
    }

    /// The nodes `σ(S ∪ {u}) \ σ(S)` that adding `u` would newly activate.
    pub fn newly_activated(&self, u: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.newly_activated_into(u, &mut out);
        out
    }

    /// Adds seed `u` whose newly activated nodes were already computed via
    /// [`CoverageState::newly_activated_into`] — `fresh` must be exactly
    /// that set for the current state, or counts will drift.
    pub fn add_seed_from(&mut self, u: u32, fresh: &[u32]) {
        for &v in fresh {
            self.covered.insert(v as usize);
        }
        self.seeds.push(u);
    }

    /// Adds seed `u`, returning the newly activated nodes.
    pub fn add_seed(&mut self, u: u32) -> Vec<u32> {
        let fresh = self.newly_activated(u);
        self.add_seed_from(u, &fresh);
        fresh
    }

    /// Snapshot of `σ(S)` as a sorted vector.
    pub fn sigma(&self) -> Vec<u32> {
        self.covered.iter_ones().map(|v| v as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::InfluenceRows;
    use grain_graph::{generators, transition_matrix, TransitionKind};

    fn index(n: usize, m: usize, seed: u64, theta: f32) -> ActivationIndex {
        let g = generators::erdos_renyi_gnm(n, m, seed);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        ActivationIndex::build(&InfluenceRows::compute(&t, 2, 0.0), theta)
    }

    #[test]
    fn incremental_matches_batch_sigma() {
        let idx = index(50, 120, 1, 0.05);
        let mut st = CoverageState::new(&idx);
        let seeds = [3u32, 17, 29, 42];
        for &s in &seeds {
            st.add_seed(s);
        }
        assert_eq!(st.sigma(), idx.sigma(&seeds));
        assert_eq!(st.covered_count(), idx.sigma_size(&seeds));
    }

    #[test]
    fn marginal_gain_matches_difference() {
        let idx = index(40, 90, 2, 0.05);
        let mut st = CoverageState::new(&idx);
        st.add_seed(5);
        st.add_seed(11);
        let base = idx.sigma_size(&[5, 11]);
        for u in 0..40u32 {
            let want = idx.sigma_size(&[5, 11, u]) - base;
            assert_eq!(st.marginal_gain(u), want, "candidate {u}");
        }
    }

    #[test]
    fn adding_same_seed_twice_gains_nothing() {
        let idx = index(30, 60, 3, 0.05);
        let mut st = CoverageState::new(&idx);
        let first = st.add_seed(7).len();
        let second = st.add_seed(7).len();
        assert!(first >= second);
        assert_eq!(second, 0);
    }

    #[test]
    fn gains_are_diminishing_along_any_chain() {
        // Submodularity in action: adding u later never helps more.
        let idx = index(45, 110, 4, 0.05);
        let probe = 21u32;
        let mut st = CoverageState::new(&idx);
        let mut last = st.marginal_gain(probe);
        for s in [2u32, 9, 30, 41] {
            st.add_seed(s);
            let now = st.marginal_gain(probe);
            assert!(now <= last, "gain grew from {last} to {now}");
            last = now;
        }
    }

    #[test]
    fn empty_state_covers_nothing() {
        let idx = index(20, 40, 5, 0.1);
        let st = CoverageState::new(&idx);
        assert_eq!(st.covered_count(), 0);
        assert!(st.sigma().is_empty());
        assert!(st.seeds().is_empty());
    }

    #[test]
    fn scratch_buffer_variant_matches_allocating_path() {
        let idx = index(60, 150, 6, 0.05);
        let mut alloc = CoverageState::new(&idx);
        let mut scratch_state = CoverageState::new(&idx);
        let mut scratch = Vec::new();
        for s in [4u32, 31, 8, 55, 4] {
            let fresh = alloc.newly_activated(s);
            let n = scratch_state.newly_activated_into(s, &mut scratch);
            assert_eq!(n, fresh.len());
            assert_eq!(scratch, fresh, "seed {s}");
            alloc.add_seed(s);
            scratch_state.add_seed_from(s, &scratch);
            assert_eq!(alloc.covered_count(), scratch_state.covered_count());
            assert_eq!(alloc.sigma(), scratch_state.sigma());
        }
    }

    #[test]
    fn bitset_coverage_matches_vec_bool_oracle() {
        // The packed-bitset covered flags replaced a Vec<bool>; replay a
        // seed sequence against that representation bit for bit.
        let idx = index(80, 220, 7, 0.03);
        let mut st = CoverageState::new(&idx);
        let mut oracle = vec![false; idx.num_nodes()];
        for s in [12u32, 3, 77, 40, 12, 63] {
            for &v in idx.activated_by(s as usize) {
                oracle[v as usize] = true;
            }
            st.add_seed(s);
            for (v, &want) in oracle.iter().enumerate() {
                assert_eq!(st.is_covered(v as u32), want, "node {v} after seed {s}");
            }
            let want_count = oracle.iter().filter(|&&b| b).count();
            assert_eq!(st.covered_count(), want_count);
            let want_sigma: Vec<u32> = (0..idx.num_nodes() as u32)
                .filter(|&v| oracle[v as usize])
                .collect();
            assert_eq!(st.sigma(), want_sigma);
        }
    }
}

//! Incremental maintenance of `σ(S)` during greedy selection.
//!
//! Adding one seed `u` to `S` changes `σ(S)` by exactly the not-yet-covered
//! part of `act[u]`; this state tracks covered flags so each greedy round
//! costs `O(|act[u]|)` per evaluated candidate instead of recomputing the
//! union from scratch (the difference between `O(B·n·L)` and `O(B·n·L·B)`
//! overall).

use crate::index::ActivationIndex;

/// Mutable coverage state over an [`ActivationIndex`].
#[derive(Clone, Debug)]
pub struct CoverageState<'a> {
    index: &'a ActivationIndex,
    covered: Vec<bool>,
    count: usize,
    seeds: Vec<u32>,
}

impl<'a> CoverageState<'a> {
    /// Empty coverage (`S = ∅`).
    pub fn new(index: &'a ActivationIndex) -> Self {
        Self {
            index,
            covered: vec![false; index.num_nodes()],
            count: 0,
            seeds: Vec::new(),
        }
    }

    /// The activation index this state tracks.
    pub fn index(&self) -> &'a ActivationIndex {
        self.index
    }

    /// `|σ(S)|` of the current seed set.
    pub fn covered_count(&self) -> usize {
        self.count
    }

    /// Current seed set (in insertion order).
    pub fn seeds(&self) -> &[u32] {
        &self.seeds
    }

    /// True if `v` is activated by the current seed set.
    pub fn is_covered(&self, v: u32) -> bool {
        self.covered[v as usize]
    }

    /// Marginal coverage gain `|σ(S ∪ {u})| - |σ(S)|` (read-only).
    pub fn marginal_gain(&self, u: u32) -> usize {
        self.index
            .activated_by(u as usize)
            .iter()
            .filter(|&&v| !self.covered[v as usize])
            .count()
    }

    /// The nodes `σ(S ∪ {u}) \ σ(S)` that adding `u` would newly activate.
    pub fn newly_activated(&self, u: u32) -> Vec<u32> {
        self.index
            .activated_by(u as usize)
            .iter()
            .copied()
            .filter(|&v| !self.covered[v as usize])
            .collect()
    }

    /// Adds seed `u`, returning the newly activated nodes.
    pub fn add_seed(&mut self, u: u32) -> Vec<u32> {
        let fresh = self.newly_activated(u);
        for &v in &fresh {
            self.covered[v as usize] = true;
        }
        self.count += fresh.len();
        self.seeds.push(u);
        fresh
    }

    /// Snapshot of `σ(S)` as a sorted vector.
    pub fn sigma(&self) -> Vec<u32> {
        self.covered
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| if c { Some(v as u32) } else { None })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::InfluenceRows;
    use grain_graph::{generators, transition_matrix, TransitionKind};

    fn index(n: usize, m: usize, seed: u64, theta: f32) -> ActivationIndex {
        let g = generators::erdos_renyi_gnm(n, m, seed);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        ActivationIndex::build(&InfluenceRows::compute(&t, 2, 0.0), theta)
    }

    #[test]
    fn incremental_matches_batch_sigma() {
        let idx = index(50, 120, 1, 0.05);
        let mut st = CoverageState::new(&idx);
        let seeds = [3u32, 17, 29, 42];
        for &s in &seeds {
            st.add_seed(s);
        }
        assert_eq!(st.sigma(), idx.sigma(&seeds));
        assert_eq!(st.covered_count(), idx.sigma_size(&seeds));
    }

    #[test]
    fn marginal_gain_matches_difference() {
        let idx = index(40, 90, 2, 0.05);
        let mut st = CoverageState::new(&idx);
        st.add_seed(5);
        st.add_seed(11);
        let base = idx.sigma_size(&[5, 11]);
        for u in 0..40u32 {
            let want = idx.sigma_size(&[5, 11, u]) - base;
            assert_eq!(st.marginal_gain(u), want, "candidate {u}");
        }
    }

    #[test]
    fn adding_same_seed_twice_gains_nothing() {
        let idx = index(30, 60, 3, 0.05);
        let mut st = CoverageState::new(&idx);
        let first = st.add_seed(7).len();
        let second = st.add_seed(7).len();
        assert!(first >= second);
        assert_eq!(second, 0);
    }

    #[test]
    fn gains_are_diminishing_along_any_chain() {
        // Submodularity in action: adding u later never helps more.
        let idx = index(45, 110, 4, 0.05);
        let probe = 21u32;
        let mut st = CoverageState::new(&idx);
        let mut last = st.marginal_gain(probe);
        for s in [2u32, 9, 30, 41] {
            st.add_seed(s);
            let now = st.marginal_gain(probe);
            assert!(now <= last, "gain grew from {last} to {now}");
            last = now;
        }
    }

    #[test]
    fn empty_state_covers_nothing() {
        let idx = index(20, 40, 5, 0.1);
        let st = CoverageState::new(&idx);
        assert_eq!(st.covered_count(), 0);
        assert!(st.sigma().is_empty());
        assert!(st.seeds().is_empty());
    }
}

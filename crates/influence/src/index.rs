//! Activation index: the inverted form of Definition 3.2.
//!
//! A node `v` is *activated* by a seed set `S` when
//! `I_v(S, k) = max_{u in S} I_v(u, k) > θ`. Because the max distributes
//! over single seeds, activation depends only on per-pair comparisons, so
//! the whole model inverts into per-seed activation lists
//! `act[u] = {v : I_v(u, k) > θ}` computed once. `σ(S)` then becomes the
//! union of `act[u]` over `u ∈ S` — a max-coverage instance that greedy
//! selection can maintain incrementally.

use crate::walk::InfluenceRows;
use grain_linalg::par;
use serde::{Deserialize, Serialize};

/// How the activation threshold `θ` of Definition 3.2 is interpreted.
///
/// The paper fixes `θ = 0.25` (Appendix A.4) yet reports `|σ(S)|` in the
/// hundreds for 20 seeds on Cora (Figure 2a) — unreachable if `θ` cuts the
/// *sum-normalized* influence of Eq. 8, whose typical entries are ~1/|2-hop
/// neighborhood|. We therefore support three interpretations and default
/// the pipeline to the scale-free one (see DESIGN.md):
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ThetaRule {
    /// Eq. 8 verbatim: activate when `I_v(u,k) > θ` on sum-normalized rows.
    FixedAbsolute(f32),
    /// Scale-free: activate when `I_v(u,k) > θ · max_w I_v(w,k)` — `u` must
    /// contribute at least a `θ` fraction of `v`'s strongest influencer.
    /// Reproduces the paper's magnitude regime on graphs of any density.
    RelativeToRowMax(f32),
    /// Data-driven: `θ` is the given quantile of all nonzero normalized
    /// influence values, then applied absolutely.
    GlobalQuantile(f64),
}

impl ThetaRule {
    /// Validates the parameter range.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ThetaRule::FixedAbsolute(t) | ThetaRule::RelativeToRowMax(t) => {
                if (0.0..=1.0).contains(&t) {
                    Ok(())
                } else {
                    Err(format!("theta must lie in [0,1], got {t}"))
                }
            }
            ThetaRule::GlobalQuantile(q) => {
                if (0.0..1.0).contains(&q) {
                    Ok(())
                } else {
                    Err(format!("quantile must lie in [0,1), got {q}"))
                }
            }
        }
    }
}

/// Inverted activation lists for a fixed threshold `θ`.
///
/// Stored in flat CSR form — one offsets array plus one concatenated
/// items array — instead of a `Vec` per seed: greedy coverage updates
/// stream over `act[u]` slices, and the flat layout keeps them contiguous
/// in memory while letting the parallel builder write disjoint ranges.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ActivationIndex {
    /// `items[offsets[u]..offsets[u+1]]` = nodes activated by seed `u`,
    /// sorted ascending.
    offsets: Vec<usize>,
    /// Concatenated activation lists.
    items: Vec<u32>,
    theta: f32,
    k: usize,
}

impl ActivationIndex {
    /// Builds the index from influence rows at absolute threshold `theta`
    /// (Eq. 8 / Definition 3.2 verbatim).
    pub fn build(rows: &InfluenceRows, theta: f32) -> Self {
        Self::build_with_rule(rows, ThetaRule::FixedAbsolute(theta))
    }

    /// Builds the index under the given [`ThetaRule`].
    pub fn build_with_rule(rows: &InfluenceRows, rule: ThetaRule) -> Self {
        Self::build_with_rule_par(rows, rule, 1)
    }

    /// [`ActivationIndex::build_with_rule`] inverting the influence rows
    /// over `threads` workers (`0` = auto).
    ///
    /// Determinism: workers extract the qualifying `(seed, node)` pairs
    /// of contiguous `v`-ranges in parallel (the threshold scan is the
    /// bulk of the work), then one sequential counting-sort pass places
    /// every pair. Within a range `v` ascends and ranges are placed in
    /// ascending order, so every `act[u]` list comes out sorted by `v`
    /// and bit-identical at any thread count. Auxiliary memory is
    /// proportional to the *output* (one pair per activation) plus one
    /// cursor array — not to `workers × n`.
    pub fn build_with_rule_par(rows: &InfluenceRows, rule: ThetaRule, threads: usize) -> Self {
        let n = rows.num_nodes();
        let (theta, relative) = match rule {
            ThetaRule::FixedAbsolute(t) => (t, false),
            ThetaRule::RelativeToRowMax(t) => (t, true),
            ThetaRule::GlobalQuantile(q) => (Self::quantile_threshold(rows, q), false),
        };
        let cutoff_of = |v: usize| -> f32 {
            if relative {
                let row_max = rows.row_values(v).iter().copied().fold(0.0f32, f32::max);
                theta * row_max
            } else {
                theta
            }
        };

        let workers = par::resolve_threads(threads).max(1).min(n.max(1));
        let chunk = n.div_ceil(workers.max(1)).max(1);
        let ranges: Vec<(usize, usize)> = (0..workers)
            .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
            .filter(|&(s, e)| s < e)
            .collect();

        // Parallel pass: each range extracts its qualifying
        // (seed, activated node) pairs, v-ascending.
        let pairs: Vec<Vec<(u32, u32)>> = par::par_map_with(workers, ranges.len(), 1, |r| {
            let (start, end) = ranges[r];
            let mut local = Vec::new();
            for v in start..end {
                let cutoff = cutoff_of(v);
                for (u, w) in rows.row_entries(v) {
                    if w > cutoff {
                        local.push((u, v as u32));
                    }
                }
            }
            local
        });

        // Sequential counting sort over the pairs, O(activations + n):
        // count per seed, prefix into offsets, then place each range's
        // pairs in range order so per-seed lists stay v-ascending.
        let mut offsets = vec![0usize; n + 1];
        for list in &pairs {
            for &(u, _) in list {
                offsets[u as usize + 1] += 1;
            }
        }
        for u in 0..n {
            offsets[u + 1] += offsets[u];
        }
        let mut cursors = offsets[..n].to_vec();
        let mut items = vec![0u32; offsets[n]];
        for list in &pairs {
            for &(u, v) in list {
                items[cursors[u as usize]] = v;
                cursors[u as usize] += 1;
            }
        }

        Self {
            offsets,
            items,
            theta,
            k: rows.k(),
        }
    }

    /// Incrementally repairs the index after the given `dirty` influence
    /// rows were rebuilt, producing the index a cold
    /// [`ActivationIndex::build_with_rule_par`] over `new_rows` would —
    /// bit-identically — without re-scanning clean rows.
    ///
    /// Every inverted entry `(u, v)` with a dirty `v` is dropped from the
    /// old lists, and the qualifying entries of the rebuilt rows are
    /// spliced back in by one sorted merge per seed. Correctness requires
    /// that `new_rows` differs from the rows this index was built over
    /// only on the `dirty` rows (sorted, unique, in range) and that `rule`
    /// is the rule this index was built with. Both row-local rules repair
    /// in `O(Σ|act[u]| + Σ_{v∈dirty}|row(v)|)`; [`ThetaRule::GlobalQuantile`]
    /// couples the threshold to every row, so it falls back to a full
    /// serial rebuild.
    pub fn repaired(&self, new_rows: &InfluenceRows, rule: ThetaRule, dirty: &[u32]) -> Self {
        if let ThetaRule::GlobalQuantile(_) = rule {
            return Self::build_with_rule_par(new_rows, rule, 1);
        }
        let n = self.num_nodes();
        assert_eq!(new_rows.num_nodes(), n, "row universe must match");
        assert_eq!(new_rows.k(), self.k, "propagation depth must match");
        debug_assert!(
            dirty.windows(2).all(|w| w[0] < w[1]),
            "dirty rows must be sorted and unique"
        );
        if let Some(&last) = dirty.last() {
            assert!((last as usize) < n, "dirty row {last} out of range");
        }
        if dirty.is_empty() {
            return self.clone();
        }
        let (theta, relative) = match rule {
            ThetaRule::FixedAbsolute(t) => (t, false),
            ThetaRule::RelativeToRowMax(t) => (t, true),
            ThetaRule::GlobalQuantile(_) => unreachable!("handled above"),
        };
        debug_assert_eq!(
            theta.to_bits(),
            self.theta.to_bits(),
            "rule must match the rule this index was built with"
        );

        let mut dirty_mask = vec![false; n];
        let mut inserted: Vec<(u32, u32)> = Vec::new();
        for &v in dirty {
            dirty_mask[v as usize] = true;
            let cutoff = if relative {
                theta
                    * new_rows
                        .row_values(v as usize)
                        .iter()
                        .copied()
                        .fold(0.0f32, f32::max)
            } else {
                theta
            };
            for (u, w) in new_rows.row_entries(v as usize) {
                if w > cutoff {
                    inserted.push((u, v));
                }
            }
        }
        // Stable sort groups the pairs by seed while preserving the
        // v-ascending emission order within each seed.
        inserted.sort_by_key(|&(u, _)| u);

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut items = Vec::with_capacity(self.items.len());
        let mut ins_pos = 0usize;
        for u in 0..n {
            let old = self.activated_by(u);
            let ins_start = ins_pos;
            while ins_pos < inserted.len() && inserted[ins_pos].0 as usize == u {
                ins_pos += 1;
            }
            let ins = &inserted[ins_start..ins_pos];
            // Sorted merge of (old list minus dirty rows) with the fresh
            // entries. The kept old side and the fresh side are disjoint
            // because every dirty row is filtered from the old side.
            let (mut i, mut j) = (0usize, 0usize);
            while i < old.len() || j < ins.len() {
                let take_old = match (old.get(i), ins.get(j)) {
                    (Some(&ov), Some(&(_, nv))) => ov < nv,
                    (Some(_), None) => true,
                    _ => false,
                };
                if take_old {
                    if !dirty_mask[old[i] as usize] {
                        items.push(old[i]);
                    }
                    i += 1;
                } else {
                    items.push(ins[j].1);
                    j += 1;
                }
            }
            offsets.push(items.len());
        }
        Self {
            offsets,
            items,
            theta: self.theta,
            k: self.k,
        }
    }

    /// The `q`-quantile of all nonzero normalized influence values.
    fn quantile_threshold(rows: &InfluenceRows, q: f64) -> f32 {
        let mut values: Vec<f32> = (0..rows.num_nodes())
            .flat_map(|v| rows.row_values(v).iter().copied())
            .collect();
        if values.is_empty() {
            return 0.0;
        }
        values.sort_unstable_by(f32::total_cmp);
        let rank = ((values.len() - 1) as f64 * q).round() as usize;
        values[rank]
    }

    /// Reassembles an index from its flat parts — the inverse of reading
    /// [`ActivationIndex::offsets`] / [`ActivationIndex::items`] back out.
    /// Exists for the on-disk artifact codec; the parts must describe a
    /// well-formed CSR (monotone offsets starting at 0 and ending at
    /// `items.len()`), which the store validates before calling this.
    pub fn from_parts(offsets: Vec<usize>, items: Vec<u32>, theta: f32, k: usize) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n+1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            items.len(),
            "offsets must end at items.len()"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            offsets,
            items,
            theta,
            k,
        }
    }

    /// The flat offsets array (`n + 1` entries). Codec accessor.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The concatenated activation lists. Codec accessor.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Number of nodes in the universe.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The activation threshold `θ` this index was built with.
    pub fn theta(&self) -> f32 {
        self.theta
    }

    /// Propagation depth of the underlying influence rows.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Nodes activated by a single seed `u` (sorted).
    pub fn activated_by(&self, u: usize) -> &[u32] {
        &self.items[self.offsets[u]..self.offsets[u + 1]]
    }

    /// `σ(S)` — the activated set of a seed set, sorted, deduplicated.
    pub fn sigma(&self, seeds: &[u32]) -> Vec<u32> {
        let mut out: Vec<u32> = seeds
            .iter()
            .flat_map(|&u| self.activated_by(u as usize).iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// `|σ(S)|` without materializing the set.
    pub fn sigma_size(&self, seeds: &[u32]) -> usize {
        self.sigma(seeds).len()
    }

    /// Upper bound `σ̂` for the normalization in Eq. 11: the number of nodes
    /// activated by at least one potential seed.
    pub fn max_coverage_bound(&self) -> usize {
        let mut seen = vec![false; self.num_nodes()];
        for &v in &self.items {
            seen[v as usize] = true;
        }
        seen.into_iter().filter(|&b| b).count()
    }

    /// Total size of all activation lists (memory/effort proxy).
    pub fn total_entries(&self) -> usize {
        self.items.len()
    }

    /// Exact heap bytes of the index: `8·(n+1)` offsets plus `4` per
    /// activation entry.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.items.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::{generators, transition_matrix, Graph, TransitionKind};

    fn rows(g: &Graph, k: usize) -> InfluenceRows {
        let t = transition_matrix(g, TransitionKind::RandomWalk, true);
        InfluenceRows::compute(&t, k, 0.0)
    }

    #[test]
    fn threshold_zero_lists_all_reachable() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let idx = ActivationIndex::build(&rows(&g, 1), 0.0);
        // One step from node 1 reaches {0, 1, 2}; so each is activated by 1.
        assert_eq!(idx.activated_by(1), &[0, 1, 2]);
    }

    #[test]
    fn higher_threshold_shrinks_lists() {
        let g = generators::erdos_renyi_gnm(50, 120, 6);
        let r = rows(&g, 2);
        let loose = ActivationIndex::build(&r, 0.0);
        let tight = ActivationIndex::build(&r, 0.3);
        assert!(tight.total_entries() <= loose.total_entries());
        for u in 0..50 {
            for v in tight.activated_by(u) {
                assert!(loose.activated_by(u).contains(v));
            }
        }
    }

    #[test]
    fn sigma_is_union_of_lists() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let idx = ActivationIndex::build(&rows(&g, 1), 0.1);
        let s01 = idx.sigma(&[0]);
        let s23 = idx.sigma(&[2]);
        let both = idx.sigma(&[0, 2]);
        let mut manual: Vec<u32> = s01.iter().chain(s23.iter()).copied().collect();
        manual.sort_unstable();
        manual.dedup();
        assert_eq!(both, manual);
        assert_eq!(idx.sigma_size(&[0, 2]), both.len());
    }

    #[test]
    fn sigma_monotone_in_seed_set() {
        let g = generators::erdos_renyi_gnm(30, 70, 8);
        let idx = ActivationIndex::build(&rows(&g, 2), 0.1);
        let small = idx.sigma_size(&[1, 5]);
        let big = idx.sigma_size(&[1, 5, 9, 13]);
        assert!(big >= small);
    }

    #[test]
    fn max_coverage_bound_bounds_every_sigma() {
        let g = generators::erdos_renyi_gnm(40, 100, 9);
        let idx = ActivationIndex::build(&rows(&g, 2), 0.05);
        let all: Vec<u32> = (0..40u32).collect();
        assert_eq!(idx.sigma_size(&all), idx.max_coverage_bound());
    }

    #[test]
    fn relative_rule_activates_argmax_influencer() {
        // Under RelativeToRowMax every node appears in at least the list of
        // its strongest influencer, so sigma over all seeds covers V.
        let g = generators::erdos_renyi_gnm(40, 100, 12);
        let idx = ActivationIndex::build_with_rule(&rows(&g, 2), ThetaRule::RelativeToRowMax(0.25));
        let all: Vec<u32> = (0..40u32).collect();
        assert_eq!(idx.sigma_size(&all), 40);
    }

    #[test]
    fn relative_rule_monotone_in_theta() {
        let g = generators::erdos_renyi_gnm(40, 100, 13);
        let r = rows(&g, 2);
        let loose = ActivationIndex::build_with_rule(&r, ThetaRule::RelativeToRowMax(0.1));
        let tight = ActivationIndex::build_with_rule(&r, ThetaRule::RelativeToRowMax(0.9));
        assert!(tight.total_entries() <= loose.total_entries());
    }

    #[test]
    fn quantile_rule_matches_manual_threshold() {
        let g = generators::erdos_renyi_gnm(30, 70, 14);
        let r = rows(&g, 2);
        let idx = ActivationIndex::build_with_rule(&r, ThetaRule::GlobalQuantile(0.5));
        // Roughly half of all influence entries should clear the median.
        let kept = idx.total_entries();
        let total: usize = (0..30).map(|v| r.row_nnz(v)).sum();
        assert!(kept * 3 > total && kept < total, "kept {kept} of {total}");
    }

    #[test]
    fn theta_rule_validation() {
        assert!(ThetaRule::FixedAbsolute(0.5).validate().is_ok());
        assert!(ThetaRule::FixedAbsolute(1.5).validate().is_err());
        assert!(ThetaRule::RelativeToRowMax(-0.1).validate().is_err());
        assert!(ThetaRule::GlobalQuantile(1.0).validate().is_err());
        assert!(ThetaRule::GlobalQuantile(0.9).validate().is_ok());
    }

    #[test]
    fn parallel_build_is_bit_identical_for_every_rule() {
        let g = generators::barabasi_albert(200, 3, 21);
        let r = rows(&g, 2);
        for rule in [
            ThetaRule::FixedAbsolute(0.05),
            ThetaRule::RelativeToRowMax(0.25),
            ThetaRule::GlobalQuantile(0.5),
        ] {
            let serial = ActivationIndex::build_with_rule_par(&r, rule, 1);
            for threads in [2usize, 3, 8] {
                let par = ActivationIndex::build_with_rule_par(&r, rule, threads);
                assert_eq!(par.theta(), serial.theta(), "{rule:?}");
                for u in 0..200 {
                    assert_eq!(
                        par.activated_by(u),
                        serial.activated_by(u),
                        "{rule:?} seed {u} at {threads} threads"
                    );
                }
            }
        }
    }

    /// Repairing the index over dirty-rebuilt rows must reproduce the cold
    /// build over the new rows byte-for-byte, for every theta rule.
    #[test]
    fn repaired_matches_cold_rebuild_after_edits() {
        let g = generators::erdos_renyi_gnm(120, 360, 17);
        let (g2, endpoints) =
            grain_graph::apply_edge_edits(&g, &[(2, 117, 1.0), (30, 90, 0.5)], &[]).unwrap();
        let t_old = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let t_new = transition_matrix(&g2, TransitionKind::RandomWalk, true);
        let old_rows = InfluenceRows::compute(&t_old, 2, 1e-4);
        let dirty = grain_graph::k_hop_ball(&g2, &endpoints, 3);
        let new_rows = old_rows.with_rebuilt_rows(
            &t_new,
            grain_prop::Kernel::RandomWalk { k: 2 },
            1e-4,
            0,
            &dirty,
        );
        for rule in [
            ThetaRule::FixedAbsolute(0.05),
            ThetaRule::RelativeToRowMax(0.25),
            ThetaRule::GlobalQuantile(0.5),
        ] {
            let old_idx = ActivationIndex::build_with_rule(&old_rows, rule);
            let cold = ActivationIndex::build_with_rule(&new_rows, rule);
            let repaired = old_idx.repaired(&new_rows, rule, &dirty);
            assert_eq!(repaired.offsets, cold.offsets, "{rule:?}");
            assert_eq!(repaired.items, cold.items, "{rule:?}");
            assert_eq!(
                repaired.theta().to_bits(),
                cold.theta().to_bits(),
                "{rule:?}"
            );
            assert_eq!(repaired.k(), cold.k(), "{rule:?}");
        }
    }

    #[test]
    fn repaired_with_empty_dirty_set_is_identity() {
        let g = generators::barabasi_albert(80, 3, 4);
        let r = rows(&g, 2);
        let idx = ActivationIndex::build_with_rule(&r, ThetaRule::RelativeToRowMax(0.25));
        let same = idx.repaired(&r, ThetaRule::RelativeToRowMax(0.25), &[]);
        assert_eq!(same.offsets, idx.offsets);
        assert_eq!(same.items, idx.items);
    }

    #[test]
    fn activation_lists_sorted() {
        let g = generators::barabasi_albert(60, 2, 10);
        let idx = ActivationIndex::build(&rows(&g, 2), 0.01);
        for u in 0..60 {
            let lst = idx.activated_by(u);
            assert!(lst.windows(2).all(|w| w[0] < w[1]));
        }
    }
}

//! Sparse per-node influence rows in a flat CSR layout.
//!
//! Row `v` of the influence matrix is `e_v^T T^k`, computed by `k`
//! scatter-gather steps over the CSR transition matrix with a dense
//! per-thread scratch buffer (lazily reset through a touched-index list, so
//! cost is proportional to row support, not to `n`). Entries below `eps`
//! are pruned after every step — influence mass that cannot clear the
//! activation threshold `θ` anyway — which keeps rows small on hub-heavy
//! graphs. Rows are L1-normalized at the end (Eq. 8); for row-stochastic
//! transitions this only compensates pruning loss.
//!
//! # Memory layout
//!
//! The rows live in one structure-of-arrays CSR triple
//! (`offsets`/`cols`/`vals`) — the same flat layout the activation index
//! uses — instead of a `Vec<Vec<(u32, f32)>>`: no per-row heap allocation,
//! no 24-byte `Vec` header per node, and columns/values stream through the
//! greedy hot loops as two contiguous arrays. At `n` nodes and `nnz`
//! stored entries the artifact occupies `8·(n+1) + 8·nnz` bytes
//! ([`InfluenceRows::resident_bytes`], exact) versus `24·n + 8·nnz` for
//! the retired nested layout ([`InfluenceRows::nested_layout_bytes`]) —
//! strictly smaller for every non-empty graph. Parallel builds write
//! per-worker flat chunks for contiguous row ranges and stitch them in
//! rank order, so the layout is bit-identical at any thread count.
//!
//! # Row truncation
//!
//! Builders accept an optional `top_k` (0 = off): each row keeps only its
//! `top_k` heaviest entries (ties broken toward the smaller column id)
//! **before** Eq. 8 normalization, bounding `nnz` by `top_k · n` on
//! hub-heavy graphs where ε-pruning alone is not enough. Truncation
//! changes results, so it participates in the artifact fingerprint
//! upstream (`GrainConfig::influence_row_top_k`).

use grain_graph::CsrMatrix;
use grain_linalg::par::{self, SendPtr};
use grain_prop::Kernel;

/// Per-power weights `c_l` such that the kernel's Jacobian w.r.t. the input
/// features is `Σ_{l=0..k} c_l T^l` (Definition 3.1 applied to each Table 1
/// mechanism). Index `l` is the walk length.
pub fn kernel_power_weights(kernel: Kernel) -> Vec<f32> {
    let k = kernel.steps();
    match kernel {
        // Pure powers: only T^k contributes.
        Kernel::SymNorm { .. } | Kernel::RandomWalk { .. } | Kernel::TriangleIa { .. } => {
            let mut w = vec![0.0; k + 1];
            w[k] = 1.0;
            w
        }
        // PPR recursion X^(k) = (1-α) T X^(k-1) + α X^(0):
        // J = Σ_{l<k} α(1-α)^l T^l + (1-α)^k T^k (weights sum to 1).
        Kernel::Ppr { alpha, .. } => {
            let mut w = Vec::with_capacity(k + 1);
            for l in 0..k {
                w.push(alpha * (1.0 - alpha).powi(l as i32));
            }
            w.push((1.0 - alpha).powi(k as i32));
            w
        }
        // S2GC average: J = α I + ((1-α)/k) Σ_{l=1..k} T^l.
        Kernel::S2gc { alpha, .. } => {
            let mut w = vec![(1.0 - alpha) / k.max(1) as f32; k + 1];
            w[0] = alpha;
            w
        }
        // GBP geometric weighting: J = Σ_l β^l T^l (Eq. 8 renormalizes).
        Kernel::Gbp { beta, .. } => (0..=k).map(|l| beta.powi(l as i32)).collect(),
    }
}

/// One worker's flat output: the rows of a contiguous `v`-range, stored as
/// per-row lengths plus concatenated columns/values. Chunks are stitched
/// into the final CSR in worker-rank order, which equals row order.
#[derive(Default)]
struct RowChunk {
    lens: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f32>,
}

/// Dense per-thread scratch for one row's scatter-gather walk: one buffer
/// for the walk step, one for the weighted accumulator, both reset lazily
/// through touched-index lists so per-row cost tracks row support, not
/// `n`. Shared between the parallel full build and the incremental
/// per-row rebuild so both run the **identical** float path.
struct WalkScratch {
    step: Vec<f32>,
    step_touched: Vec<u32>,
    acc: Vec<f32>,
    acc_touched: Vec<u32>,
    frontier: Vec<(u32, f32)>,
}

impl WalkScratch {
    fn new(n: usize) -> Self {
        Self {
            step: vec![0.0f32; n],
            step_touched: Vec::new(),
            acc: vec![0.0f32; n],
            acc_touched: Vec::new(),
            frontier: Vec::new(),
        }
    }
}

/// Computes the normalized influence row of `v` into `row`: `k`
/// scatter-gather steps with ε-pruning between steps, optional `top_k`
/// truncation (ties toward the smaller column) before Eq. 8
/// normalization. This is the single per-row walk both the full builder
/// and [`InfluenceRows::with_rebuilt_rows`] execute — one float path, so
/// a row rebuilt in isolation is bit-identical to the same row from a
/// cold build.
fn walk_row(
    t: &CsrMatrix,
    weights: &[f32],
    eps: f32,
    top_k: usize,
    v: usize,
    scratch: &mut WalkScratch,
    row: &mut Vec<(u32, f32)>,
) {
    let k = weights.len() - 1;
    let WalkScratch {
        step,
        step_touched,
        acc,
        acc_touched,
        frontier,
    } = scratch;
    frontier.clear();
    frontier.push((v as u32, 1.0));
    acc_touched.clear();
    if weights[0] != 0.0 {
        acc[v] = weights[0];
        acc_touched.push(v as u32);
    }
    for &wl in weights.iter().skip(1).take(k) {
        step_touched.clear();
        for &(node, mass) in frontier.iter() {
            let (idx, vals) = t.row(node as usize);
            for (&c, &w) in idx.iter().zip(vals) {
                let add = mass * w;
                if add == 0.0 {
                    continue;
                }
                if step[c as usize] == 0.0 {
                    step_touched.push(c);
                }
                step[c as usize] += add;
            }
        }
        frontier.clear();
        for &c in step_touched.iter() {
            let val = step[c as usize];
            step[c as usize] = 0.0;
            if val >= eps {
                frontier.push((c, val));
                if wl != 0.0 {
                    if acc[c as usize] == 0.0 {
                        acc_touched.push(c);
                    }
                    acc[c as usize] += wl * val;
                }
            }
        }
    }
    row.clear();
    for &c in acc_touched.iter() {
        let val = acc[c as usize];
        acc[c as usize] = 0.0;
        if val > 0.0 {
            row.push((c, val));
        }
    }
    // Optional truncation to the top_k heaviest entries (ties toward the
    // smaller column), applied before normalization so the kept mass is
    // renormalized.
    if top_k > 0 && row.len() > top_k {
        row.sort_unstable_by(|&(ca, wa), &(cb, wb)| wb.total_cmp(&wa).then(ca.cmp(&cb)));
        row.truncate(top_k);
    }
    row.sort_unstable_by_key(|&(c, _)| c);
    // Eq. 8 normalization over the kept entries.
    let total: f32 = row.iter().map(|&(_, w)| w).sum();
    if total > 0.0 {
        for e in row.iter_mut() {
            e.1 /= total;
        }
    }
}

/// All normalized influence rows of a graph, in flat CSR form.
#[derive(Clone, Debug, Default)]
pub struct InfluenceRows {
    /// `cols[offsets[v]..offsets[v+1]]` (and the matching `vals` range) is
    /// the sparse row of `v`, sorted by column.
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f32>,
    k: usize,
}

impl InfluenceRows {
    /// Computes `I_v(·, k)` for every `v`, pruning entries `< eps` between
    /// steps.
    ///
    /// # Panics
    /// Panics if `t` is not square.
    pub fn compute(t: &CsrMatrix, k: usize, eps: f32) -> Self {
        let mut weights = vec![0.0; k + 1];
        weights[k] = 1.0;
        Self::compute_weighted(t, &weights, eps)
    }

    /// Influence rows under the exact Jacobian of `kernel` (Definition 3.1):
    /// a `c_l`-weighted sum of walk powers per [`kernel_power_weights`].
    pub fn for_kernel(t: &CsrMatrix, kernel: Kernel, eps: f32) -> Self {
        Self::compute_weighted(t, &kernel_power_weights(kernel), eps)
    }

    /// [`InfluenceRows::for_kernel`] over `threads` workers (`0` = auto).
    pub fn for_kernel_par(t: &CsrMatrix, kernel: Kernel, eps: f32, threads: usize) -> Self {
        Self::compute_weighted_par(t, &kernel_power_weights(kernel), eps, threads)
    }

    /// [`InfluenceRows::for_kernel_par`] with a cooperative stop probe
    /// (see [`InfluenceRows::compute_weighted_topk_ctl`]).
    pub fn for_kernel_ctl(
        t: &CsrMatrix,
        kernel: Kernel,
        eps: f32,
        threads: usize,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Option<Self> {
        Self::compute_weighted_topk_ctl(
            t,
            &kernel_power_weights(kernel),
            eps,
            0,
            threads,
            should_stop,
        )
    }

    /// [`InfluenceRows::for_kernel_ctl`] with per-row truncation to the
    /// `top_k` heaviest entries (`0` = off; see the module docs).
    pub fn for_kernel_topk_ctl(
        t: &CsrMatrix,
        kernel: Kernel,
        eps: f32,
        top_k: usize,
        threads: usize,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Option<Self> {
        Self::compute_weighted_topk_ctl(
            t,
            &kernel_power_weights(kernel),
            eps,
            top_k,
            threads,
            should_stop,
        )
    }

    /// Computes normalized rows of `Σ_l weights[l] · T^l`, pruning frontier
    /// entries `< eps` between steps.
    ///
    /// # Panics
    /// Panics if `t` is not square or `weights` is empty.
    pub fn compute_weighted(t: &CsrMatrix, weights: &[f32], eps: f32) -> Self {
        Self::compute_weighted_par(t, weights, eps, 0)
    }

    /// [`InfluenceRows::compute_weighted`] over `threads` workers
    /// (`0` = auto). Every row `v` is scatter-gathered start to finish by
    /// exactly one worker with thread-local scratch, and each worker's flat
    /// chunk is stitched into the CSR in rank (= row) order, so the rows
    /// are bit-identical at any thread count.
    ///
    /// # Panics
    /// Panics if `t` is not square or `weights` is empty.
    pub fn compute_weighted_par(t: &CsrMatrix, weights: &[f32], eps: f32, threads: usize) -> Self {
        Self::compute_weighted_topk_ctl(t, weights, eps, 0, threads, &|| false)
            .expect("influence rows with a never-stopping probe cannot be cancelled")
    }

    /// [`InfluenceRows::compute_weighted_par`] with per-row truncation to
    /// the `top_k` heaviest entries (`0` = off).
    pub fn compute_weighted_topk(t: &CsrMatrix, weights: &[f32], eps: f32, top_k: usize) -> Self {
        Self::compute_weighted_topk_ctl(t, weights, eps, top_k, 0, &|| false)
            .expect("influence rows with a never-stopping probe cannot be cancelled")
    }

    /// [`InfluenceRows::compute_weighted_par`] with a cooperative stop
    /// probe (see [`InfluenceRows::compute_weighted_topk_ctl`]).
    pub fn compute_weighted_ctl(
        t: &CsrMatrix,
        weights: &[f32],
        eps: f32,
        threads: usize,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Option<Self> {
        Self::compute_weighted_topk_ctl(t, weights, eps, 0, threads, should_stop)
    }

    /// The fully general builder: weighted walk powers, ε-pruning, optional
    /// `top_k` row truncation, explicit worker count, and a cooperative
    /// stop probe polled by every worker once per **block of rows** (each
    /// row is a full scatter-gather walk — the natural unit of work).
    /// Returns `None` as soon as any worker observes the probe; the
    /// partially filled chunks are discarded, never stitched, so a
    /// cancelled build cannot tear the artifact. A probe that always
    /// returns `false` is bit-identical to the uncancellable builders.
    ///
    /// When `top_k > 0`, each row keeps only its `top_k` heaviest entries
    /// (ties toward the smaller column id) **before** Eq. 8 normalization.
    ///
    /// # Panics
    /// Panics if `t` is not square or `weights` is empty.
    pub fn compute_weighted_topk_ctl(
        t: &CsrMatrix,
        weights: &[f32],
        eps: f32,
        top_k: usize,
        threads: usize,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Option<Self> {
        use std::sync::atomic::{AtomicBool, Ordering};

        /// Rows each worker processes between probe polls: large enough
        /// that polling cost vanishes, small enough that cancellation is
        /// observed within milliseconds on real graphs.
        const ROW_BLOCK: usize = 64;

        assert_eq!(t.rows(), t.cols(), "transition matrix must be square");
        assert!(!weights.is_empty(), "need at least the T^0 weight");
        let k = weights.len() - 1;
        let n = t.rows();
        let threads = par::resolve_threads(threads).max(1);
        let chunk = n.div_ceil(threads).max(1);
        let mut chunks: Vec<RowChunk> = (0..threads).map(|_| RowChunk::default()).collect();
        let out = SendPtr(chunks.as_mut_ptr());
        let stopped = AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            for tix in 0..threads {
                let start = tix * chunk;
                let end = ((tix + 1) * chunk).min(n);
                if start >= end {
                    break;
                }
                #[allow(clippy::redundant_locals)]
                let out = out;
                let stopped = &stopped;
                scope.spawn(move |_| {
                    // Rebind the wrapper so the closure captures `SendPtr`
                    // itself rather than its raw-pointer field (edition-2021
                    // disjoint capture would otherwise strip the Send impl).
                    #[allow(clippy::redundant_locals)]
                    let out = out;
                    // SAFETY: each worker writes exclusively its own chunk
                    // index, and `chunks` outlives the scope.
                    let local = unsafe { &mut *out.0.add(tix) };
                    local.lens.reserve(end - start);
                    // Per-thread walk scratch; `row` assembles one row
                    // before it is appended to the flat chunk.
                    let mut scratch = WalkScratch::new(n);
                    let mut row: Vec<(u32, f32)> = Vec::new();
                    for v in start..end {
                        if (v - start) % ROW_BLOCK == 0
                            && (stopped.load(Ordering::Relaxed) || should_stop())
                        {
                            stopped.store(true, Ordering::Relaxed);
                            return;
                        }
                        walk_row(t, weights, eps, top_k, v, &mut scratch, &mut row);
                        local.lens.push(row.len() as u32);
                        for &(c, w) in &row {
                            local.cols.push(c);
                            local.vals.push(w);
                        }
                    }
                });
            }
        })
        .expect("influence worker panicked");
        if stopped.load(Ordering::Relaxed) {
            return None;
        }
        // Stitch the per-worker chunks in rank order (= row order) into
        // one flat CSR triple. Pure memcpy; no float is touched, so the
        // stitched layout is bit-identical at any thread count.
        let nnz: usize = chunks.iter().map(|c| c.cols.len()).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut cols: Vec<u32> = Vec::with_capacity(nnz);
        let mut vals: Vec<f32> = Vec::with_capacity(nnz);
        for chunk in &chunks {
            for &len in &chunk.lens {
                let last = *offsets.last().expect("offsets starts non-empty");
                offsets.push(last + len as usize);
            }
            cols.extend_from_slice(&chunk.cols);
            vals.extend_from_slice(&chunk.vals);
        }
        debug_assert_eq!(offsets.len(), n + 1);
        Some(Self {
            offsets,
            cols,
            vals,
            k,
        })
    }

    /// Reassembles rows from their flat parts — the inverse of reading
    /// [`InfluenceRows::offsets`] / [`InfluenceRows::cols`] /
    /// [`InfluenceRows::vals`] back out. Exists for the on-disk artifact
    /// codec; the parts must describe a well-formed CSR (monotone offsets
    /// starting at 0 and ending at `cols.len()`, matching `cols`/`vals`
    /// lengths), which the store validates before calling this.
    pub fn from_parts(offsets: Vec<usize>, cols: Vec<u32>, vals: Vec<f32>, k: usize) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n+1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            cols.len(),
            "offsets must end at cols.len()"
        );
        assert_eq!(cols.len(), vals.len(), "cols/vals lengths must match");
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            offsets,
            cols,
            vals,
            k,
        }
    }

    /// The flat offsets array (`n + 1` entries). Codec accessor.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The concatenated column ids of every row. Codec accessor.
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// The concatenated values of every row. Codec accessor.
    pub fn vals(&self) -> &[f32] {
        &self.vals
    }

    /// Number of nodes (rows).
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Propagation depth these rows were computed at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The sparse normalized influence row of `v` as `(columns, values)`
    /// slices, sorted by column — the same shape as
    /// [`grain_graph::CsrMatrix::row`].
    pub fn row(&self, v: usize) -> (&[u32], &[f32]) {
        let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Column ids of row `v`, sorted ascending.
    pub fn row_indices(&self, v: usize) -> &[u32] {
        &self.cols[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Values of row `v`, matching [`InfluenceRows::row_indices`].
    pub fn row_values(&self, v: usize) -> &[f32] {
        &self.vals[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Entries of row `v` as `(column, value)` pairs, sorted by column.
    pub fn row_entries(&self, v: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let (cols, vals) = self.row(v);
        cols.iter().copied().zip(vals.iter().copied())
    }

    /// Stored entries in row `v`.
    pub fn row_nnz(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// `I_v(u, k)`: normalized influence of `u` on `v`.
    pub fn influence(&self, v: usize, u: u32) -> f32 {
        let (cols, vals) = self.row(v);
        match cols.binary_search(&u) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// `I_v(S, k) = max_{u in S} I_v(u, k)` (the set influence of Def. 3.2).
    pub fn set_influence(&self, v: usize, set: &[u32]) -> f32 {
        set.iter()
            .map(|&u| self.influence(v, u))
            .fold(0.0f32, f32::max)
    }

    /// Total stored entries across all rows.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Exact heap bytes of the CSR artifact: `8·(n+1)` offsets plus
    /// `8·nnz` for the column/value arrays.
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.cols.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f32>()
    }

    /// Heap bytes the same rows would occupy in the retired
    /// `Vec<Vec<(u32, f32)>>` layout: one 24-byte `Vec` header per node
    /// plus 8 bytes per entry — the cost model the CSR layout is measured
    /// against (strictly larger for every non-empty graph).
    pub fn nested_layout_bytes(&self) -> usize {
        self.num_nodes() * std::mem::size_of::<Vec<(u32, f32)>>()
            + self.nnz() * std::mem::size_of::<(u32, f32)>()
    }

    /// Column-sum of influence mass received *from* each node `u`
    /// (Σ_v I_v(u, k)) — the "walk mass" used by Sec-3.4 candidate pruning.
    pub fn walk_mass(&self) -> Vec<f32> {
        let mut mass = vec![0.0f32; self.num_nodes()];
        for (&u, &w) in self.cols.iter().zip(&self.vals) {
            mass[u as usize] += w;
        }
        mass
    }

    /// Rebuild only the `dirty` rows against the (already mutated)
    /// transition matrix `t` and splice them between the untouched row
    /// slices of `self`.
    ///
    /// The dirty rows run through the same `walk_row` routine the cold
    /// builders use — same scatter/gather order, same ε-pruning, same
    /// `top_k` truncation and L1 normalization — so a row rebuilt here is
    /// byte-identical to the row a cold
    /// [`InfluenceRows::for_kernel_topk_ctl`] over `t` would produce.
    /// Clean rows are `memcpy`d from `self`, which is valid whenever
    /// `dirty` is a superset of the rows whose ε-pruned walk neighborhoods
    /// changed.
    ///
    /// `dirty` must be sorted, unique, and in range; `kernel`, `eps`, and
    /// `top_k` must match the parameters `self` was built with (the depth
    /// is checked against `self.k`).
    pub fn with_rebuilt_rows(
        &self,
        t: &CsrMatrix,
        kernel: Kernel,
        eps: f32,
        top_k: usize,
        dirty: &[u32],
    ) -> Self {
        let n = self.num_nodes();
        assert_eq!(t.rows(), t.cols(), "transition matrix must be square");
        assert_eq!(t.rows(), n, "transition size must match the row count");
        let weights = kernel_power_weights(kernel);
        assert_eq!(
            weights.len().saturating_sub(1),
            self.k,
            "kernel depth must match the depth these rows were built at"
        );
        debug_assert!(
            dirty.windows(2).all(|w| w[0] < w[1]),
            "dirty rows must be sorted and unique"
        );
        if let Some(&last) = dirty.last() {
            assert!((last as usize) < n, "dirty row {last} out of range");
        }
        if dirty.is_empty() {
            return self.clone();
        }

        let mut offsets: Vec<usize> = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut cols: Vec<u32> = Vec::with_capacity(self.cols.len());
        let mut vals: Vec<f32> = Vec::with_capacity(self.vals.len());
        let mut scratch = WalkScratch::new(n);
        let mut row: Vec<(u32, f32)> = Vec::new();
        // Walk the clean run before each dirty row (bulk copy), then the
        // rebuilt dirty row itself; `cursor` tracks the first uncopied row.
        let mut cursor = 0usize;
        let flush_clean = |upto: usize,
                           cols: &mut Vec<u32>,
                           vals: &mut Vec<f32>,
                           offsets: &mut Vec<usize>,
                           cursor: &mut usize| {
            if *cursor < upto {
                let (lo, hi) = (self.offsets[*cursor], self.offsets[upto]);
                cols.extend_from_slice(&self.cols[lo..hi]);
                vals.extend_from_slice(&self.vals[lo..hi]);
                let base = offsets.last().copied().expect("offsets non-empty");
                for r in *cursor..upto {
                    offsets.push(base + (self.offsets[r + 1] - lo));
                }
                *cursor = upto;
            }
        };
        for &d in dirty {
            let d = d as usize;
            flush_clean(d, &mut cols, &mut vals, &mut offsets, &mut cursor);
            walk_row(t, &weights, eps, top_k, d, &mut scratch, &mut row);
            for &(c, w) in &row {
                cols.push(c);
                vals.push(w);
            }
            let last = *offsets.last().expect("offsets non-empty");
            offsets.push(last + row.len());
            cursor = d + 1;
        }
        flush_clean(n, &mut cols, &mut vals, &mut offsets, &mut cursor);
        debug_assert_eq!(offsets.len(), n + 1);
        Self {
            offsets,
            cols,
            vals,
            k: self.k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::{generators, transition_matrix, Graph, TransitionKind};

    fn rw(g: &Graph) -> CsrMatrix {
        transition_matrix(g, TransitionKind::RandomWalk, true)
    }

    /// The retired nested builder, kept as the serial reference the flat
    /// CSR is property-tested against: same per-row walk, same float
    /// order, rows materialized as `Vec<Vec<(u32, f32)>>`.
    fn reference_nested(
        t: &CsrMatrix,
        weights: &[f32],
        eps: f32,
        top_k: usize,
    ) -> Vec<Vec<(u32, f32)>> {
        let k = weights.len() - 1;
        let n = t.rows();
        let mut rows = Vec::with_capacity(n);
        let mut step = vec![0.0f32; n];
        let mut acc = vec![0.0f32; n];
        for v in 0..n {
            let mut frontier = vec![(v as u32, 1.0f32)];
            let mut acc_touched: Vec<u32> = Vec::new();
            if weights[0] != 0.0 {
                acc[v] = weights[0];
                acc_touched.push(v as u32);
            }
            for &wl in weights.iter().skip(1).take(k) {
                let mut step_touched: Vec<u32> = Vec::new();
                for &(node, mass) in &frontier {
                    let (idx, vals) = t.row(node as usize);
                    for (&c, &w) in idx.iter().zip(vals) {
                        let add = mass * w;
                        if add == 0.0 {
                            continue;
                        }
                        if step[c as usize] == 0.0 {
                            step_touched.push(c);
                        }
                        step[c as usize] += add;
                    }
                }
                frontier.clear();
                for &c in &step_touched {
                    let val = step[c as usize];
                    step[c as usize] = 0.0;
                    if val >= eps {
                        frontier.push((c, val));
                        if wl != 0.0 {
                            if acc[c as usize] == 0.0 {
                                acc_touched.push(c);
                            }
                            acc[c as usize] += wl * val;
                        }
                    }
                }
            }
            let mut row: Vec<(u32, f32)> = Vec::new();
            for &c in &acc_touched {
                let val = acc[c as usize];
                acc[c as usize] = 0.0;
                if val > 0.0 {
                    row.push((c, val));
                }
            }
            if top_k > 0 && row.len() > top_k {
                row.sort_unstable_by(|&(ca, wa), &(cb, wb)| wb.total_cmp(&wa).then(ca.cmp(&cb)));
                row.truncate(top_k);
            }
            row.sort_unstable_by_key(|&(c, _)| c);
            let total: f32 = row.iter().map(|&(_, w)| w).sum();
            if total > 0.0 {
                for e in &mut row {
                    e.1 /= total;
                }
            }
            rows.push(row);
        }
        rows
    }

    fn assert_matches_nested(csr: &InfluenceRows, nested: &[Vec<(u32, f32)>]) {
        assert_eq!(csr.num_nodes(), nested.len());
        for (v, want) in nested.iter().enumerate() {
            let got: Vec<(u32, f32)> = csr.row_entries(v).collect();
            assert_eq!(&got, want, "row {v}");
            for &(c, w) in want {
                assert_eq!(csr.influence(v, c).to_bits(), w.to_bits(), "({v},{c})");
            }
        }
    }

    #[test]
    fn rows_are_normalized_probability_distributions() {
        let g = generators::erdos_renyi_gnm(40, 100, 2);
        let rows = InfluenceRows::compute(&rw(&g), 2, 0.0);
        for v in 0..40 {
            let sum: f32 = rows.row_values(v).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {v} sums to {sum}");
            assert!(rows.row_values(v).iter().all(|&w| w >= 0.0));
        }
    }

    #[test]
    fn matches_walk_probability_on_path() {
        // Path 0-1-2 with self-loops: from node 0, one step gives
        // 1/2 to 0 and 1/2 to 1.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let rows = InfluenceRows::compute(&rw(&g), 1, 0.0);
        assert!((rows.influence(0, 0) - 0.5).abs() < 1e-6);
        assert!((rows.influence(0, 1) - 0.5).abs() < 1e-6);
        assert_eq!(rows.influence(0, 2), 0.0);
    }

    #[test]
    fn two_steps_reach_two_hops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let rows = InfluenceRows::compute(&rw(&g), 2, 0.0);
        // 0 -> 1 -> 2 path exists: I_0(2, 2) = 1/2 * 1/3 = 1/6.
        assert!((rows.influence(0, 2) - 1.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn pruning_keeps_rows_sparse_but_normalized() {
        let g = generators::barabasi_albert(300, 3, 7);
        let exact = InfluenceRows::compute(&rw(&g), 2, 0.0);
        let pruned = InfluenceRows::compute(&rw(&g), 2, 0.01);
        assert!(pruned.nnz() < exact.nnz());
        for v in 0..300 {
            let sum: f32 = pruned.row_values(v).iter().sum();
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn set_influence_takes_max() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let rows = InfluenceRows::compute(&rw(&g), 1, 0.0);
        let s = [0u32, 2u32];
        let direct = rows.set_influence(1, &s);
        assert!((direct - rows.influence(1, 0).max(rows.influence(1, 2))).abs() < 1e-7);
    }

    #[test]
    fn walk_mass_sums_to_total_mass() {
        let g = generators::erdos_renyi_gnm(25, 50, 3);
        let rows = InfluenceRows::compute(&rw(&g), 2, 0.0);
        let mass: f32 = rows.walk_mass().iter().sum();
        assert!((mass - 25.0).abs() < 1e-3);
    }

    #[test]
    fn isolated_node_influences_only_itself() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let rows = InfluenceRows::compute(&rw(&g), 2, 0.0);
        assert_eq!(rows.row(2), (&[2u32][..], &[1.0f32][..]));
    }

    #[test]
    fn ppr_weights_sum_to_one() {
        let w = kernel_power_weights(grain_prop::Kernel::Ppr { k: 4, alpha: 0.15 });
        assert_eq!(w.len(), 5);
        let total: f32 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn s2gc_weights_sum_to_one() {
        let w = kernel_power_weights(grain_prop::Kernel::S2gc { k: 3, alpha: 0.1 });
        let total: f32 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!((w[0] - 0.1).abs() < 1e-7);
    }

    #[test]
    fn pure_power_weights_select_top_power() {
        let w = kernel_power_weights(grain_prop::Kernel::RandomWalk { k: 2 });
        assert_eq!(w, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn for_kernel_ppr_includes_self_influence() {
        // PPR's α-weighted identity keeps mass on the source even at k=2.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let t = rw(&g);
        let ppr = InfluenceRows::for_kernel(&t, grain_prop::Kernel::Ppr { k: 2, alpha: 0.5 }, 0.0);
        let plain = InfluenceRows::for_kernel(&t, grain_prop::Kernel::RandomWalk { k: 2 }, 0.0);
        assert!(ppr.influence(0, 0) > plain.influence(0, 0));
        // Both stay normalized distributions.
        let sum: f32 = ppr.row_values(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn compute_matches_for_kernel_on_plain_walk() {
        let g = generators::erdos_renyi_gnm(30, 70, 12);
        let t = rw(&g);
        let a = InfluenceRows::compute(&t, 2, 0.0);
        let b = InfluenceRows::for_kernel(&t, grain_prop::Kernel::RandomWalk { k: 2 }, 0.0);
        for v in 0..30 {
            assert_eq!(a.row(v), b.row(v));
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = generators::erdos_renyi_gnm(60, 150, 4);
        let t = rw(&g);
        let a = InfluenceRows::compute(&t, 2, 1e-4);
        let b = InfluenceRows::compute(&t, 2, 1e-4);
        for v in 0..60 {
            assert_eq!(a.row(v), b.row(v));
        }
    }

    #[test]
    fn ctl_probe_false_is_bit_identical_and_true_cancels() {
        let g = generators::barabasi_albert(200, 3, 11);
        let t = rw(&g);
        let kernel = Kernel::Ppr { k: 2, alpha: 0.15 };
        let plain = InfluenceRows::for_kernel_par(&t, kernel, 1e-4, 2);
        let ctl = InfluenceRows::for_kernel_ctl(&t, kernel, 1e-4, 2, &|| false).unwrap();
        for v in 0..200 {
            assert_eq!(plain.row(v), ctl.row(v), "row {v}");
        }
        assert!(
            InfluenceRows::for_kernel_ctl(&t, kernel, 1e-4, 2, &|| true).is_none(),
            "a tripped probe yields no (partial) artifact"
        );
    }

    #[test]
    fn explicit_thread_counts_are_bit_identical() {
        let g = generators::barabasi_albert(250, 3, 17);
        let t = rw(&g);
        let serial = InfluenceRows::for_kernel_par(&t, Kernel::Ppr { k: 2, alpha: 0.15 }, 1e-4, 1);
        for threads in [2usize, 8] {
            let par =
                InfluenceRows::for_kernel_par(&t, Kernel::Ppr { k: 2, alpha: 0.15 }, 1e-4, threads);
            for v in 0..250 {
                assert_eq!(par.row(v), serial.row(v), "row {v} at {threads} threads");
            }
        }
    }

    #[test]
    fn csr_matches_reference_nested_build() {
        let g = generators::barabasi_albert(220, 3, 5);
        let t = rw(&g);
        for eps in [0.0f32, 1e-4, 1e-2] {
            let weights = kernel_power_weights(Kernel::Ppr { k: 2, alpha: 0.15 });
            let nested = reference_nested(&t, &weights, eps, 0);
            for threads in [1usize, 2, 8] {
                let csr = InfluenceRows::compute_weighted_topk_ctl(
                    &t,
                    &weights,
                    eps,
                    0,
                    threads,
                    &|| false,
                )
                .unwrap();
                assert_matches_nested(&csr, &nested);
            }
        }
    }

    #[test]
    fn truncation_keeps_top_k_by_weight_with_smaller_column_ties() {
        // Star around node 0 with a self-loop transition: row of 0 at k=1
        // spreads equal mass over the leaves — a pure tie, so truncation
        // must keep the smallest column ids.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let rows = InfluenceRows::compute_weighted_topk(&rw(&g), &[0.0, 1.0], 0.0, 3);
        assert_eq!(rows.row_indices(0), &[0, 1, 2]);
        let sum: f32 = rows.row_values(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "truncated row renormalizes");
    }

    #[test]
    fn truncation_matches_reference_and_is_thread_invariant() {
        let g = generators::barabasi_albert(200, 4, 9);
        let t = rw(&g);
        let weights = kernel_power_weights(Kernel::RandomWalk { k: 2 });
        for top_k in [1usize, 4, 16] {
            let nested = reference_nested(&t, &weights, 0.0, top_k);
            for threads in [1usize, 3, 8] {
                let csr = InfluenceRows::compute_weighted_topk_ctl(
                    &t,
                    &weights,
                    0.0,
                    top_k,
                    threads,
                    &|| false,
                )
                .unwrap();
                assert_matches_nested(&csr, &nested);
                for v in 0..200 {
                    assert!(csr.row_nnz(v) <= top_k, "row {v} exceeds top_k={top_k}");
                }
            }
        }
    }

    #[test]
    fn top_k_zero_and_oversized_top_k_change_nothing() {
        let g = generators::barabasi_albert(150, 3, 13);
        let t = rw(&g);
        let plain = InfluenceRows::compute(&t, 2, 1e-4);
        let zero = InfluenceRows::compute_weighted_topk(&t, &[0.0, 0.0, 1.0], 1e-4, 0);
        let huge = InfluenceRows::compute_weighted_topk(&t, &[0.0, 0.0, 1.0], 1e-4, 10_000);
        for v in 0..150 {
            assert_eq!(plain.row(v), zero.row(v), "row {v} (top_k = 0)");
            assert_eq!(plain.row(v), huge.row(v), "row {v} (oversized top_k)");
        }
    }

    #[test]
    fn truncation_bounds_nnz_and_resident_bytes() {
        let g = generators::barabasi_albert(400, 5, 3);
        let t = rw(&g);
        let full = InfluenceRows::compute(&t, 2, 0.0);
        let cut = InfluenceRows::compute_weighted_topk(&t, &[0.0, 0.0, 1.0], 0.0, 8);
        assert!(cut.nnz() <= 8 * 400);
        assert!(cut.nnz() < full.nnz());
        assert!(cut.resident_bytes() < full.resident_bytes());
    }

    #[test]
    fn csr_resident_bytes_strictly_below_nested_layout() {
        let g = generators::erdos_renyi_gnm(100, 300, 21);
        let rows = InfluenceRows::compute(&rw(&g), 2, 1e-4);
        assert_eq!(
            rows.resident_bytes(),
            8 * (rows.num_nodes() + 1) + 8 * rows.nnz()
        );
        assert_eq!(
            rows.nested_layout_bytes(),
            24 * rows.num_nodes() + 8 * rows.nnz()
        );
        assert!(rows.resident_bytes() < rows.nested_layout_bytes());
    }

    /// Splice-rebuilding the dirty rows after an edge edit must reproduce
    /// the cold build over the mutated graph byte-for-byte, for every
    /// kernel and with/without top-k truncation. The dirty set is the
    /// (k+1)-hop ball around the edited endpoints under the *new*
    /// adjacency — a superset of the rows whose walk neighborhoods moved.
    #[test]
    fn rebuilt_rows_match_cold_build_after_edits() {
        let g = generators::erdos_renyi_gnm(160, 480, 9);
        let inserts = [(3u32, 150u32, 1.0f32), (40, 99, 2.5)];
        let deletes_src: Vec<(u32, u32)> = {
            let (cols, _) = g.adjacency().row(5);
            cols.first().map(|&c| (5u32, c)).into_iter().collect()
        };
        let (g2, endpoints) =
            grain_graph::apply_edge_edits(&g, &inserts, &deletes_src).expect("valid edits");
        for kernel in [
            Kernel::RandomWalk { k: 2 },
            Kernel::Ppr { k: 2, alpha: 0.15 },
            Kernel::S2gc { k: 2, alpha: 0.1 },
            Kernel::Gbp { k: 2, beta: 0.4 },
        ] {
            let depth = kernel_power_weights(kernel).len() - 1;
            for kind in [TransitionKind::RandomWalk, TransitionKind::Symmetric] {
                let t_old = transition_matrix(&g, kind, true);
                let t_new = transition_matrix(&g2, kind, true);
                let dirty = grain_graph::k_hop_ball(&g2, &endpoints, depth + 1);
                for top_k in [0usize, 4] {
                    let old =
                        InfluenceRows::for_kernel_topk_ctl(&t_old, kernel, 1e-4, top_k, 1, &|| {
                            false
                        })
                        .expect("cold old build");
                    let cold =
                        InfluenceRows::for_kernel_topk_ctl(&t_new, kernel, 1e-4, top_k, 1, &|| {
                            false
                        })
                        .expect("cold new build");
                    let patched = old.with_rebuilt_rows(&t_new, kernel, 1e-4, top_k, &dirty);
                    assert_eq!(patched.offsets, cold.offsets, "{kernel:?}/{kind:?}/{top_k}");
                    assert_eq!(patched.cols, cold.cols, "{kernel:?}/{kind:?}/{top_k}");
                    for (a, b) in patched.vals.iter().zip(&cold.vals) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "value bits diverged ({kernel:?}/{kind:?}/top_k={top_k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rebuilt_rows_with_empty_dirty_set_is_identity() {
        let g = generators::barabasi_albert(120, 3, 5);
        let t = rw(&g);
        let rows = InfluenceRows::compute(&t, 2, 1e-4);
        let same = rows.with_rebuilt_rows(&t, Kernel::RandomWalk { k: 2 }, 1e-4, 0, &[]);
        assert_eq!(rows.offsets, same.offsets);
        assert_eq!(rows.cols, same.cols);
        assert_eq!(rows.vals, same.vals);
    }

    #[test]
    #[should_panic(expected = "kernel depth")]
    fn rebuilt_rows_rejects_depth_mismatch() {
        let g = generators::erdos_renyi_gnm(40, 80, 2);
        let t = rw(&g);
        let rows = InfluenceRows::compute(&t, 2, 1e-4);
        let _ = rows.with_rebuilt_rows(&t, Kernel::RandomWalk { k: 3 }, 1e-4, 0, &[1]);
    }
}

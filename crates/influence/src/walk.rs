//! Sparse per-node influence rows.
//!
//! Row `v` of the influence matrix is `e_v^T T^k`, computed by `k`
//! scatter-gather steps over the CSR transition matrix with a dense
//! per-thread scratch buffer (lazily reset through a touched-index list, so
//! cost is proportional to row support, not to `n`). Entries below `eps`
//! are pruned after every step — influence mass that cannot clear the
//! activation threshold `θ` anyway — which keeps rows small on hub-heavy
//! graphs. Rows are L1-normalized at the end (Eq. 8); for row-stochastic
//! transitions this only compensates pruning loss.

use grain_graph::CsrMatrix;
use grain_linalg::par::{self, SendPtr};
use grain_prop::Kernel;

/// Per-power weights `c_l` such that the kernel's Jacobian w.r.t. the input
/// features is `Σ_{l=0..k} c_l T^l` (Definition 3.1 applied to each Table 1
/// mechanism). Index `l` is the walk length.
pub fn kernel_power_weights(kernel: Kernel) -> Vec<f32> {
    let k = kernel.steps();
    match kernel {
        // Pure powers: only T^k contributes.
        Kernel::SymNorm { .. } | Kernel::RandomWalk { .. } | Kernel::TriangleIa { .. } => {
            let mut w = vec![0.0; k + 1];
            w[k] = 1.0;
            w
        }
        // PPR recursion X^(k) = (1-α) T X^(k-1) + α X^(0):
        // J = Σ_{l<k} α(1-α)^l T^l + (1-α)^k T^k (weights sum to 1).
        Kernel::Ppr { alpha, .. } => {
            let mut w = Vec::with_capacity(k + 1);
            for l in 0..k {
                w.push(alpha * (1.0 - alpha).powi(l as i32));
            }
            w.push((1.0 - alpha).powi(k as i32));
            w
        }
        // S2GC average: J = α I + ((1-α)/k) Σ_{l=1..k} T^l.
        Kernel::S2gc { alpha, .. } => {
            let mut w = vec![(1.0 - alpha) / k.max(1) as f32; k + 1];
            w[0] = alpha;
            w
        }
        // GBP geometric weighting: J = Σ_l β^l T^l (Eq. 8 renormalizes).
        Kernel::Gbp { beta, .. } => (0..=k).map(|l| beta.powi(l as i32)).collect(),
    }
}

/// All normalized influence rows of a graph.
#[derive(Clone, Debug, Default)]
pub struct InfluenceRows {
    rows: Vec<Vec<(u32, f32)>>,
    k: usize,
}

impl InfluenceRows {
    /// Computes `I_v(·, k)` for every `v`, pruning entries `< eps` between
    /// steps.
    ///
    /// # Panics
    /// Panics if `t` is not square.
    pub fn compute(t: &CsrMatrix, k: usize, eps: f32) -> Self {
        let mut weights = vec![0.0; k + 1];
        weights[k] = 1.0;
        Self::compute_weighted(t, &weights, eps)
    }

    /// Influence rows under the exact Jacobian of `kernel` (Definition 3.1):
    /// a `c_l`-weighted sum of walk powers per [`kernel_power_weights`].
    pub fn for_kernel(t: &CsrMatrix, kernel: Kernel, eps: f32) -> Self {
        Self::compute_weighted(t, &kernel_power_weights(kernel), eps)
    }

    /// [`InfluenceRows::for_kernel`] over `threads` workers (`0` = auto).
    pub fn for_kernel_par(t: &CsrMatrix, kernel: Kernel, eps: f32, threads: usize) -> Self {
        Self::compute_weighted_par(t, &kernel_power_weights(kernel), eps, threads)
    }

    /// [`InfluenceRows::for_kernel_par`] with a cooperative stop probe
    /// (see [`InfluenceRows::compute_weighted_ctl`]).
    pub fn for_kernel_ctl(
        t: &CsrMatrix,
        kernel: Kernel,
        eps: f32,
        threads: usize,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Option<Self> {
        Self::compute_weighted_ctl(t, &kernel_power_weights(kernel), eps, threads, should_stop)
    }

    /// Computes normalized rows of `Σ_l weights[l] · T^l`, pruning frontier
    /// entries `< eps` between steps.
    ///
    /// # Panics
    /// Panics if `t` is not square or `weights` is empty.
    pub fn compute_weighted(t: &CsrMatrix, weights: &[f32], eps: f32) -> Self {
        Self::compute_weighted_par(t, weights, eps, 0)
    }

    /// [`InfluenceRows::compute_weighted`] over `threads` workers
    /// (`0` = auto). Every row `v` is scatter-gathered start to finish by
    /// exactly one worker with thread-local scratch, so the rows are
    /// bit-identical at any thread count.
    ///
    /// # Panics
    /// Panics if `t` is not square or `weights` is empty.
    pub fn compute_weighted_par(t: &CsrMatrix, weights: &[f32], eps: f32, threads: usize) -> Self {
        Self::compute_weighted_ctl(t, weights, eps, threads, &|| false)
            .expect("influence rows with a never-stopping probe cannot be cancelled")
    }

    /// [`InfluenceRows::compute_weighted_par`] with a cooperative stop
    /// probe, polled by every worker once per **block of rows** (each row
    /// is a full scatter-gather walk — the natural unit of work). Returns
    /// `None` as soon as any worker observes the probe; the partially
    /// filled rows are discarded, never returned, so a cancelled build
    /// cannot tear the artifact. A probe that always returns `false` is
    /// bit-identical to [`InfluenceRows::compute_weighted_par`].
    ///
    /// # Panics
    /// Panics if `t` is not square or `weights` is empty.
    pub fn compute_weighted_ctl(
        t: &CsrMatrix,
        weights: &[f32],
        eps: f32,
        threads: usize,
        should_stop: &(dyn Fn() -> bool + Sync),
    ) -> Option<Self> {
        use std::sync::atomic::{AtomicBool, Ordering};

        /// Rows each worker processes between probe polls: large enough
        /// that polling cost vanishes, small enough that cancellation is
        /// observed within milliseconds on real graphs.
        const ROW_BLOCK: usize = 64;

        assert_eq!(t.rows(), t.cols(), "transition matrix must be square");
        assert!(!weights.is_empty(), "need at least the T^0 weight");
        let k = weights.len() - 1;
        let n = t.rows();
        let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
        let out = SendPtr(rows.as_mut_ptr());
        let threads = par::resolve_threads(threads).max(1);
        let chunk = n.div_ceil(threads).max(1);
        let stopped = AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            for tix in 0..threads {
                let start = tix * chunk;
                let end = ((tix + 1) * chunk).min(n);
                if start >= end {
                    break;
                }
                #[allow(clippy::redundant_locals)]
                let out = out;
                let stopped = &stopped;
                scope.spawn(move |_| {
                    // Rebind the wrapper so the closure captures `SendPtr`
                    // itself rather than its raw-pointer field (edition-2021
                    // disjoint capture would otherwise strip the Send impl).
                    #[allow(clippy::redundant_locals)]
                    let out = out;
                    // Per-thread scratch: one dense buffer for the walk
                    // step, one for the weighted accumulator; both reset
                    // lazily via touched lists so per-node cost tracks row
                    // support, not n.
                    let mut step = vec![0.0f32; n];
                    let mut step_touched: Vec<u32> = Vec::new();
                    let mut acc = vec![0.0f32; n];
                    let mut acc_touched: Vec<u32> = Vec::new();
                    let mut frontier: Vec<(u32, f32)> = Vec::new();
                    for v in start..end {
                        if (v - start) % ROW_BLOCK == 0
                            && (stopped.load(Ordering::Relaxed) || should_stop())
                        {
                            stopped.store(true, Ordering::Relaxed);
                            return;
                        }
                        frontier.clear();
                        frontier.push((v as u32, 1.0));
                        acc_touched.clear();
                        if weights[0] != 0.0 {
                            acc[v] = weights[0];
                            acc_touched.push(v as u32);
                        }
                        for &wl in weights.iter().skip(1).take(k) {
                            step_touched.clear();
                            for &(node, mass) in &frontier {
                                let (idx, vals) = t.row(node as usize);
                                for (&c, &w) in idx.iter().zip(vals) {
                                    let add = mass * w;
                                    if add == 0.0 {
                                        continue;
                                    }
                                    if step[c as usize] == 0.0 {
                                        step_touched.push(c);
                                    }
                                    step[c as usize] += add;
                                }
                            }
                            frontier.clear();
                            for &c in &step_touched {
                                let val = step[c as usize];
                                step[c as usize] = 0.0;
                                if val >= eps {
                                    frontier.push((c, val));
                                    if wl != 0.0 {
                                        if acc[c as usize] == 0.0 {
                                            acc_touched.push(c);
                                        }
                                        acc[c as usize] += wl * val;
                                    }
                                }
                            }
                        }
                        let mut row: Vec<(u32, f32)> = Vec::with_capacity(acc_touched.len());
                        for &c in &acc_touched {
                            let val = acc[c as usize];
                            acc[c as usize] = 0.0;
                            if val > 0.0 {
                                row.push((c, val));
                            }
                        }
                        row.sort_unstable_by_key(|&(c, _)| c);
                        // Eq. 8 normalization.
                        let total: f32 = row.iter().map(|&(_, w)| w).sum();
                        if total > 0.0 {
                            for e in &mut row {
                                e.1 /= total;
                            }
                        }
                        // SAFETY: each thread writes disjoint row indices.
                        unsafe { *out.0.add(v) = row };
                    }
                });
            }
        })
        .expect("influence worker panicked");
        if stopped.load(Ordering::Relaxed) {
            return None;
        }
        Some(Self { rows, k })
    }

    /// Number of nodes (rows).
    pub fn num_nodes(&self) -> usize {
        self.rows.len()
    }

    /// Propagation depth these rows were computed at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The sparse normalized influence row of `v`, sorted by column.
    pub fn row(&self, v: usize) -> &[(u32, f32)] {
        &self.rows[v]
    }

    /// `I_v(u, k)`: normalized influence of `u` on `v`.
    pub fn influence(&self, v: usize, u: u32) -> f32 {
        match self.rows[v].binary_search_by_key(&u, |&(c, _)| c) {
            Ok(pos) => self.rows[v][pos].1,
            Err(_) => 0.0,
        }
    }

    /// `I_v(S, k) = max_{u in S} I_v(u, k)` (the set influence of Def. 3.2).
    pub fn set_influence(&self, v: usize, set: &[u32]) -> f32 {
        set.iter()
            .map(|&u| self.influence(v, u))
            .fold(0.0f32, f32::max)
    }

    /// Total stored entries across all rows.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Column-sum of influence mass received *from* each node `u`
    /// (Σ_v I_v(u, k)) — the "walk mass" used by Sec-3.4 candidate pruning.
    pub fn walk_mass(&self) -> Vec<f32> {
        let mut mass = vec![0.0f32; self.num_nodes()];
        for row in &self.rows {
            for &(u, w) in row {
                mass[u as usize] += w;
            }
        }
        mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grain_graph::{generators, transition_matrix, Graph, TransitionKind};

    fn rw(g: &Graph) -> CsrMatrix {
        transition_matrix(g, TransitionKind::RandomWalk, true)
    }

    #[test]
    fn rows_are_normalized_probability_distributions() {
        let g = generators::erdos_renyi_gnm(40, 100, 2);
        let rows = InfluenceRows::compute(&rw(&g), 2, 0.0);
        for v in 0..40 {
            let sum: f32 = rows.row(v).iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {v} sums to {sum}");
            assert!(rows.row(v).iter().all(|&(_, w)| w >= 0.0));
        }
    }

    #[test]
    fn matches_walk_probability_on_path() {
        // Path 0-1-2 with self-loops: from node 0, one step gives
        // 1/2 to 0 and 1/2 to 1.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let rows = InfluenceRows::compute(&rw(&g), 1, 0.0);
        assert!((rows.influence(0, 0) - 0.5).abs() < 1e-6);
        assert!((rows.influence(0, 1) - 0.5).abs() < 1e-6);
        assert_eq!(rows.influence(0, 2), 0.0);
    }

    #[test]
    fn two_steps_reach_two_hops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let rows = InfluenceRows::compute(&rw(&g), 2, 0.0);
        // 0 -> 1 -> 2 path exists: I_0(2, 2) = 1/2 * 1/3 = 1/6.
        assert!((rows.influence(0, 2) - 1.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn pruning_keeps_rows_sparse_but_normalized() {
        let g = generators::barabasi_albert(300, 3, 7);
        let exact = InfluenceRows::compute(&rw(&g), 2, 0.0);
        let pruned = InfluenceRows::compute(&rw(&g), 2, 0.01);
        assert!(pruned.nnz() < exact.nnz());
        for v in 0..300 {
            let sum: f32 = pruned.row(v).iter().map(|&(_, w)| w).sum();
            assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn set_influence_takes_max() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let rows = InfluenceRows::compute(&rw(&g), 1, 0.0);
        let s = [0u32, 2u32];
        let direct = rows.set_influence(1, &s);
        assert!((direct - rows.influence(1, 0).max(rows.influence(1, 2))).abs() < 1e-7);
    }

    #[test]
    fn walk_mass_sums_to_total_mass() {
        let g = generators::erdos_renyi_gnm(25, 50, 3);
        let rows = InfluenceRows::compute(&rw(&g), 2, 0.0);
        let mass: f32 = rows.walk_mass().iter().sum();
        assert!((mass - 25.0).abs() < 1e-3);
    }

    #[test]
    fn isolated_node_influences_only_itself() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let rows = InfluenceRows::compute(&rw(&g), 2, 0.0);
        assert_eq!(rows.row(2), &[(2, 1.0)]);
    }

    #[test]
    fn ppr_weights_sum_to_one() {
        let w = kernel_power_weights(grain_prop::Kernel::Ppr { k: 4, alpha: 0.15 });
        assert_eq!(w.len(), 5);
        let total: f32 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn s2gc_weights_sum_to_one() {
        let w = kernel_power_weights(grain_prop::Kernel::S2gc { k: 3, alpha: 0.1 });
        let total: f32 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!((w[0] - 0.1).abs() < 1e-7);
    }

    #[test]
    fn pure_power_weights_select_top_power() {
        let w = kernel_power_weights(grain_prop::Kernel::RandomWalk { k: 2 });
        assert_eq!(w, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn for_kernel_ppr_includes_self_influence() {
        // PPR's α-weighted identity keeps mass on the source even at k=2.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let t = rw(&g);
        let ppr = InfluenceRows::for_kernel(&t, grain_prop::Kernel::Ppr { k: 2, alpha: 0.5 }, 0.0);
        let plain = InfluenceRows::for_kernel(&t, grain_prop::Kernel::RandomWalk { k: 2 }, 0.0);
        assert!(ppr.influence(0, 0) > plain.influence(0, 0));
        // Both stay normalized distributions.
        let sum: f32 = ppr.row(0).iter().map(|&(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn compute_matches_for_kernel_on_plain_walk() {
        let g = generators::erdos_renyi_gnm(30, 70, 12);
        let t = rw(&g);
        let a = InfluenceRows::compute(&t, 2, 0.0);
        let b = InfluenceRows::for_kernel(&t, grain_prop::Kernel::RandomWalk { k: 2 }, 0.0);
        for v in 0..30 {
            assert_eq!(a.row(v), b.row(v));
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = generators::erdos_renyi_gnm(60, 150, 4);
        let t = rw(&g);
        let a = InfluenceRows::compute(&t, 2, 1e-4);
        let b = InfluenceRows::compute(&t, 2, 1e-4);
        for v in 0..60 {
            assert_eq!(a.row(v), b.row(v));
        }
    }

    #[test]
    fn ctl_probe_false_is_bit_identical_and_true_cancels() {
        let g = generators::barabasi_albert(200, 3, 11);
        let t = rw(&g);
        let kernel = Kernel::Ppr { k: 2, alpha: 0.15 };
        let plain = InfluenceRows::for_kernel_par(&t, kernel, 1e-4, 2);
        let ctl = InfluenceRows::for_kernel_ctl(&t, kernel, 1e-4, 2, &|| false).unwrap();
        for v in 0..200 {
            assert_eq!(plain.row(v), ctl.row(v), "row {v}");
        }
        assert!(
            InfluenceRows::for_kernel_ctl(&t, kernel, 1e-4, 2, &|| true).is_none(),
            "a tripped probe yields no (partial) artifact"
        );
    }

    #[test]
    fn explicit_thread_counts_are_bit_identical() {
        let g = generators::barabasi_albert(250, 3, 17);
        let t = rw(&g);
        let serial = InfluenceRows::for_kernel_par(&t, Kernel::Ppr { k: 2, alpha: 0.15 }, 1e-4, 1);
        for threads in [2usize, 8] {
            let par =
                InfluenceRows::for_kernel_par(&t, Kernel::Ppr { k: 2, alpha: 0.15 }, 1e-4, threads);
            for v in 0..250 {
                assert_eq!(par.row(v), serial.row(v), "row {v} at {threads} threads");
            }
        }
    }
}

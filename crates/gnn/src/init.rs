//! Weight initialization.

use grain_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Glorot/Xavier uniform initialization: `U(-s, s)` with
/// `s = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, seed: u64) -> DenseMatrix {
    let s = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..fan_in * fan_out)
        .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * s)
        .collect();
    DenseMatrix::from_vec(fan_in, fan_out, data)
}

/// Zero-initialized bias row.
pub fn zeros_bias(dim: usize) -> Vec<f32> {
    vec![0.0; dim]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_bounds_respected() {
        let w = glorot_uniform(64, 16, 3);
        let s = (6.0f32 / 80.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= s));
        assert!(w.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn glorot_deterministic_per_seed() {
        assert_eq!(glorot_uniform(8, 8, 7), glorot_uniform(8, 8, 7));
        assert_ne!(glorot_uniform(8, 8, 7), glorot_uniform(8, 8, 8));
    }

    #[test]
    fn glorot_mean_near_zero() {
        let w = glorot_uniform(100, 100, 5);
        let mean: f32 = w.as_slice().iter().sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.005, "mean {mean}");
    }
}

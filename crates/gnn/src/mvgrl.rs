//! MVGRL-sim: the documented substitute for MVGRL (Hassani & Khasahmadi
//! 2020).
//!
//! MVGRL learns node representations by contrasting two structural views —
//! the adjacency view and a PPR-diffusion view — and is evaluated with a
//! linear classifier on the frozen embedding. The Grain paper uses MVGRL
//! purely as a downstream model whose test accuracy measures selection
//! quality. This substitute reproduces that role without a GPU-scale
//! contrastive training loop: the two structural views are computed
//! directly (symmetric k-step smoothing ⊕ PPR diffusion), concatenated
//! into a frozen embedding, and a linear head is trained on the labeled
//! set (the same linear-evaluation protocol MVGRL reports). See DESIGN.md.

use crate::linear::LinearHead;
use crate::model::{EpochHook, Model, TrainConfig, TrainReport};
use grain_graph::Graph;
use grain_linalg::DenseMatrix;
use grain_prop::{propagate, Kernel};

/// Frozen two-view embedding + linear head.
pub struct MvgrlSimModel {
    head: LinearHead,
}

impl MvgrlSimModel {
    /// Builds the two views at depth `k` with PPR teleport `alpha`.
    pub fn new(
        graph: &Graph,
        features: &DenseMatrix,
        num_classes: usize,
        k: usize,
        alpha: f32,
        seed: u64,
    ) -> Self {
        let adjacency_view = propagate(graph, Kernel::SymNorm { k }, features);
        let diffusion_view = propagate(graph, Kernel::Ppr { k, alpha }, features);
        let embedding = adjacency_view.hconcat(&diffusion_view);
        Self {
            head: LinearHead::new(&embedding, num_classes, seed),
        }
    }
}

impl Model for MvgrlSimModel {
    fn name(&self) -> &'static str {
        "mvgrl-sim"
    }

    fn reset(&mut self, seed: u64) {
        self.head.reset(seed);
    }

    fn train_with_hook(
        &mut self,
        labels: &[u32],
        train_idx: &[u32],
        val_idx: &[u32],
        cfg: &TrainConfig,
        hook: Option<&mut EpochHook<'_>>,
    ) -> TrainReport {
        self.head.train(labels, train_idx, val_idx, cfg, hook)
    }

    fn predict(&self) -> DenseMatrix {
        self.head.predict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::toy_dataset;

    #[test]
    fn learns_two_community_classification() {
        let (g, x, labels) = toy_dataset(31);
        let train: Vec<u32> = vec![0, 1, 2, 3, 40, 41, 42, 43];
        let test: Vec<u32> = (10..40).chain(50..80).collect();
        let mut model = MvgrlSimModel::new(&g, &x, 2, 2, 0.1, 1);
        let cfg = TrainConfig {
            epochs: 150,
            patience: None,
            ..Default::default()
        };
        model.train(&labels, &train, &[], &cfg);
        let acc = accuracy(&model.predict(), &labels, &test);
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn embedding_has_two_views() {
        // Predictions dimensionality is classes; the views widen the input,
        // which we can only observe through successful training — this test
        // just asserts construction on a feature width != hidden width.
        let (g, x, _) = toy_dataset(32);
        let model = MvgrlSimModel::new(&g, &x, 2, 3, 0.2, 2);
        assert_eq!(model.predict().cols(), 2);
        assert_eq!(model.name(), "mvgrl-sim");
    }
}

//! Classification metrics.

use grain_linalg::DenseMatrix;

/// Accuracy of row-argmax predictions over the index set.
pub fn accuracy(probs: &DenseMatrix, labels: &[u32], idx: &[u32]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for &i in idx {
        let i = i as usize;
        let pred = grain_linalg::stats::argmax(probs.row(i)).unwrap_or(0) as u32;
        if pred == labels[i] {
            correct += 1;
        }
    }
    correct as f64 / idx.len() as f64
}

/// Macro-averaged F1 over the index set.
pub fn macro_f1(probs: &DenseMatrix, labels: &[u32], idx: &[u32], num_classes: usize) -> f64 {
    if idx.is_empty() || num_classes == 0 {
        return 0.0;
    }
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fneg = vec![0usize; num_classes];
    for &i in idx {
        let i = i as usize;
        let pred = grain_linalg::stats::argmax(probs.row(i)).unwrap_or(0) as usize;
        let truth = labels[i] as usize;
        if pred == truth {
            tp[truth] += 1;
        } else {
            fp[pred] += 1;
            fneg[truth] += 1;
        }
    }
    let mut f1_sum = 0.0;
    let mut classes_present = 0usize;
    for c in 0..num_classes {
        let support = tp[c] + fneg[c];
        if support == 0 && fp[c] == 0 {
            continue; // class absent from both truth and predictions
        }
        classes_present += 1;
        let precision = if tp[c] + fp[c] > 0 {
            tp[c] as f64 / (tp[c] + fp[c]) as f64
        } else {
            0.0
        };
        let recall = if support > 0 {
            tp[c] as f64 / support as f64
        } else {
            0.0
        };
        if precision + recall > 0.0 {
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    if classes_present == 0 {
        0.0
    } else {
        f1_sum / classes_present as f64
    }
}

/// Confusion matrix (`truth x predicted`) over the index set.
pub fn confusion_matrix(
    probs: &DenseMatrix,
    labels: &[u32],
    idx: &[u32],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for &i in idx {
        let i = i as usize;
        let pred = grain_linalg::stats::argmax(probs.row(i)).unwrap_or(0) as usize;
        m[labels[i] as usize][pred] += 1;
    }
    m
}

/// Mean entropy of the predicted distributions over the index set
/// (the uncertainty signal used by AGE and max-entropy core-set).
pub fn mean_prediction_entropy(probs: &DenseMatrix, idx: &[u32]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    idx.iter()
        .map(|&i| row_entropy(probs.row(i as usize)))
        .sum::<f64>()
        / idx.len() as f64
}

/// Entropy of one probability row.
pub fn row_entropy(p: &[f32]) -> f64 {
    -p.iter()
        .filter(|&&v| v > 0.0)
        .map(|&v| (v as f64) * (v as f64).ln())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs() -> DenseMatrix {
        DenseMatrix::from_vec(4, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4, 0.3, 0.7])
    }

    #[test]
    fn accuracy_counts_matches() {
        let labels = [0u32, 1, 1, 1];
        let idx: Vec<u32> = (0..4).collect();
        // preds = [0, 1, 0, 1] -> 3/4 correct.
        assert!((accuracy(&probs(), &labels, &idx) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn accuracy_on_empty_index_is_zero() {
        assert_eq!(accuracy(&probs(), &[0, 1, 1, 1], &[]), 0.0);
    }

    #[test]
    fn perfect_macro_f1_is_one() {
        let labels = [0u32, 1, 0, 1];
        let idx = [0u32, 1];
        assert!((macro_f1(&probs(), &labels, &idx, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_diagonal_for_correct() {
        let labels = [0u32, 1, 1, 1];
        let idx: Vec<u32> = (0..4).collect();
        let m = confusion_matrix(&probs(), &labels, &idx, 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 2);
        assert_eq!(m[1][0], 1);
    }

    #[test]
    fn entropy_maximal_for_uniform() {
        let uniform = [0.5f32, 0.5];
        let peaked = [0.99f32, 0.01];
        assert!(row_entropy(&uniform) > row_entropy(&peaked));
        assert!((row_entropy(&uniform) - (2f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn macro_f1_ignores_absent_classes() {
        let labels = [0u32, 0, 0, 0];
        let idx = [0u32];
        // Only class 0 present and predicted: F1 = 1 even with 5 classes declared.
        let p = DenseMatrix::from_vec(4, 5, {
            let mut v = vec![0.0; 20];
            v[0] = 1.0;
            v
        });
        assert!((macro_f1(&p, &labels, &idx, 5) - 1.0).abs() < 1e-12);
    }
}

//! The common model interface consumed by selection baselines and the
//! experiment harness.

use grain_linalg::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Per-epoch hook: receives the epoch number and current full-graph class
/// probabilities. Used by the forgetting-events core-set criterion.
pub type EpochHook<'a> = dyn FnMut(usize, &DenseMatrix) + 'a;

/// Training hyper-parameters (Appendix A.4 defaults, with dropout relaxed
/// from 0.85 to 0.5 for the low-dimensional synthetic features — 0.85 was
/// tuned for 1433-dimensional bag-of-words inputs).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Full-batch epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 regularization added to weight gradients.
    pub weight_decay: f32,
    /// Dropout rate on hidden activations.
    pub dropout: f32,
    /// Stop after this many epochs without validation improvement
    /// (`None` disables early stopping). Requires a validation set.
    pub patience: Option<usize>,
    /// Never early-stop before this epoch: unlucky initializations can sit
    /// on a flat loss for tens of epochs before escaping, and stopping
    /// inside that plateau restores near-random "best" weights.
    pub min_epochs: usize,
    /// RNG seed (dropout masks, initialization on reset).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            lr: 0.01,
            weight_decay: 5e-4,
            dropout: 0.5,
            patience: Some(30),
            min_epochs: 40,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// Fast profile for tests and inner AL loops.
    pub fn fast() -> Self {
        Self {
            epochs: 90,
            patience: Some(20),
            min_epochs: 35,
            ..Self::default()
        }
    }
}

/// Outcome of one training run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Best validation accuracy observed (0 when no validation set given).
    pub best_val_accuracy: f64,
    /// Epoch of the best validation accuracy.
    pub best_epoch: usize,
    /// Training loss at the final executed epoch.
    pub final_loss: f64,
    /// Number of epochs actually run (early stopping may cut this short).
    pub epochs_run: usize,
}

/// An inductively usable node classifier bound to one graph + feature set.
///
/// Implementations cache their propagation structures at construction; the
/// active-learning loops call [`Model::reset`] + [`Model::train`] each
/// round as the labeled pool grows.
pub trait Model {
    /// Short display name ("gcn", "sgc", ...).
    fn name(&self) -> &'static str;

    /// Re-initializes all trainable parameters from `seed`.
    fn reset(&mut self, seed: u64);

    /// Trains on `labels[train_idx]`, early-stopping on `val_idx` accuracy
    /// when configured; `hook` fires after every epoch with current
    /// probabilities.
    fn train_with_hook(
        &mut self,
        labels: &[u32],
        train_idx: &[u32],
        val_idx: &[u32],
        cfg: &TrainConfig,
        hook: Option<&mut EpochHook<'_>>,
    ) -> TrainReport;

    /// Full-graph class probabilities (`n x C`).
    fn predict(&self) -> DenseMatrix;

    /// [`Model::train_with_hook`] without a hook.
    fn train(
        &mut self,
        labels: &[u32],
        train_idx: &[u32],
        val_idx: &[u32],
        cfg: &TrainConfig,
    ) -> TrainReport {
        self.train_with_hook(labels, train_idx, val_idx, cfg, None)
    }
}

/// Predicted class per node: row-wise argmax of probabilities.
pub fn predicted_classes(probs: &DenseMatrix) -> Vec<u32> {
    (0..probs.rows())
        .map(|i| grain_linalg::stats::argmax(probs.row(i)).unwrap_or(0) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = TrainConfig::default();
        assert!(c.epochs > 0);
        assert!(c.lr > 0.0);
        assert!((0.0..1.0).contains(&c.dropout));
    }

    #[test]
    fn predicted_classes_argmax_rows() {
        let p = DenseMatrix::from_vec(2, 3, vec![0.1, 0.7, 0.2, 0.5, 0.3, 0.2]);
        assert_eq!(predicted_classes(&p), vec![1, 0]);
    }

    #[test]
    fn fast_profile_shrinks_epochs() {
        assert!(TrainConfig::fast().epochs < TrainConfig::default().epochs);
    }
}

//! Activations and regularization masks.

use grain_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ReLU forward, in place.
pub fn relu_inplace(m: &mut DenseMatrix) {
    m.map_inplace(|v| v.max(0.0));
}

/// ReLU backward: zeroes gradient entries where the forward *pre-activation*
/// was non-positive.
pub fn relu_backward_inplace(grad: &mut DenseMatrix, pre_activation: &DenseMatrix) {
    assert_eq!(
        grad.shape(),
        pre_activation.shape(),
        "relu_backward: shape mismatch"
    );
    for (g, &z) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pre_activation.as_slice())
    {
        if z <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Row-wise softmax (numerically stabilized), out of place.
pub fn softmax_rows(logits: &DenseMatrix) -> DenseMatrix {
    let mut out = logits.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// Inverted-dropout mask: entries are `0` with probability `rate`, else
/// `1/(1-rate)` so the expected activation is unchanged.
pub fn dropout_mask(rows: usize, cols: usize, rate: f32, seed: u64) -> DenseMatrix {
    assert!((0.0..1.0).contains(&rate), "dropout rate must lie in [0,1)");
    if rate == 0.0 {
        return DenseMatrix::full(rows, cols, 1.0);
    }
    let keep = 1.0 - rate;
    let scale = 1.0 / keep;
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| {
            if rng.random::<f32>() < keep {
                scale
            } else {
                0.0
            }
        })
        .collect();
    DenseMatrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut m = DenseMatrix::from_vec(1, 4, vec![-1., 0., 2., -0.5]);
        relu_inplace(&mut m);
        assert_eq!(m.row(0), &[0., 0., 2., 0.]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let pre = DenseMatrix::from_vec(1, 3, vec![-1., 0.5, 0.0]);
        let mut grad = DenseMatrix::from_vec(1, 3, vec![1., 1., 1.]);
        relu_backward_inplace(&mut grad, &pre);
        assert_eq!(grad.row(0), &[0., 1., 0.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = DenseMatrix::from_vec(2, 3, vec![1., 2., 3., 1000., 1000., 1000.]);
        let p = softmax_rows(&m);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(i).iter().all(|&v| v.is_finite()));
        }
        assert!(p.get(0, 2) > p.get(0, 0));
    }

    #[test]
    fn dropout_mask_preserves_expectation() {
        let mask = dropout_mask(100, 50, 0.4, 9);
        let mean: f32 = mask.as_slice().iter().sum::<f32>() / 5000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Entries are exactly 0 or 1/keep.
        let keep_val = 1.0 / 0.6;
        assert!(mask
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - keep_val).abs() < 1e-6));
    }

    #[test]
    fn zero_rate_mask_is_all_ones() {
        let mask = dropout_mask(3, 3, 0.0, 1);
        assert!(mask.as_slice().iter().all(|&v| v == 1.0));
    }
}

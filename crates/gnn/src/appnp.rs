//! APPNP (Klicpera et al.): "predict then propagate" — an MLP produces
//! per-node logits which are diffused with personalized PageRank.
//!
//! ```text
//! H  = dropout(relu(X W1))
//! Z0 = H W2
//! Z  = PPR_K(Z0),  PPR step: Z ← (1-α) Â Z + α Z0
//! ```
//!
//! The PPR operator is a symmetric polynomial in `Â`, so backprop through
//! the propagation reuses the same iteration on the incoming gradient.

use crate::activ::{dropout_mask, relu_backward_inplace, relu_inplace, softmax_rows};
use crate::adam::Adam;
use crate::init::glorot_uniform;
use crate::loss::masked_cross_entropy;
use crate::metrics::accuracy;
use crate::model::{EpochHook, Model, TrainConfig, TrainReport};
use grain_graph::{transition_matrix, CsrMatrix, Graph, TransitionKind};
use grain_linalg::{ops, DenseMatrix};

/// APPNP model bound to a graph + feature matrix.
pub struct AppnpModel {
    a_hat: CsrMatrix,
    x: DenseMatrix,
    w1: DenseMatrix,
    w2: DenseMatrix,
    hidden: usize,
    num_classes: usize,
    k: usize,
    alpha: f32,
}

impl AppnpModel {
    /// Builds the model (`k` PPR iterations, teleport `alpha`; the paper
    /// uses `alpha = 0.1`).
    pub fn new(
        graph: &Graph,
        features: &DenseMatrix,
        num_classes: usize,
        hidden: usize,
        k: usize,
        alpha: f32,
        seed: u64,
    ) -> Self {
        assert_eq!(
            graph.num_nodes(),
            features.rows(),
            "feature rows != node count"
        );
        assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0,1]");
        let a_hat = transition_matrix(graph, TransitionKind::Symmetric, true);
        let d = features.cols();
        Self {
            a_hat,
            x: features.clone(),
            w1: glorot_uniform(d, hidden, seed),
            w2: glorot_uniform(hidden, num_classes, seed.wrapping_add(1)),
            hidden,
            num_classes,
            k,
            alpha,
        }
    }

    /// Applies the K-step PPR diffusion to a logit/gradient matrix.
    fn ppr_propagate(&self, z0: &DenseMatrix) -> DenseMatrix {
        let mut z = z0.clone();
        for _ in 0..self.k {
            let mut next = self.a_hat.spmm(&z);
            ops::scale(&mut next, 1.0 - self.alpha);
            ops::axpy(&mut next, self.alpha, z0);
            z = next;
        }
        z
    }

    fn forward_eval(&self) -> DenseMatrix {
        let mut h = ops::matmul(&self.x, &self.w1);
        relu_inplace(&mut h);
        let z0 = ops::matmul(&h, &self.w2);
        softmax_rows(&self.ppr_propagate(&z0))
    }
}

impl Model for AppnpModel {
    fn name(&self) -> &'static str {
        "appnp"
    }

    fn reset(&mut self, seed: u64) {
        self.w1 = glorot_uniform(self.x.cols(), self.hidden, seed);
        self.w2 = glorot_uniform(self.hidden, self.num_classes, seed.wrapping_add(1));
    }

    fn train_with_hook(
        &mut self,
        labels: &[u32],
        train_idx: &[u32],
        val_idx: &[u32],
        cfg: &TrainConfig,
        mut hook: Option<&mut EpochHook<'_>>,
    ) -> TrainReport {
        assert_eq!(labels.len(), self.x.rows(), "labels must cover all nodes");
        let n = self.x.rows();
        let mut opt1 = Adam::new(self.w1.as_slice().len(), cfg.lr);
        let mut opt2 = Adam::new(self.w2.as_slice().len(), cfg.lr);
        let mut report = TrainReport::default();
        let mut best = (self.w1.clone(), self.w2.clone());
        let mut since_best = 0usize;
        for epoch in 0..cfg.epochs {
            report.epochs_run = epoch + 1;
            // ---- forward ----
            let z1 = ops::matmul(&self.x, &self.w1);
            let mut h = z1.clone();
            relu_inplace(&mut h);
            let mask = dropout_mask(n, self.hidden, cfg.dropout, cfg.seed ^ (epoch as u64) << 1);
            let hd = ops::hadamard(&h, &mask);
            let z0 = ops::matmul(&hd, &self.w2);
            let z = self.ppr_propagate(&z0);
            // ---- loss ----
            let (loss, dz) = masked_cross_entropy(&z, labels, train_idx);
            report.final_loss = loss;
            // ---- backward ----
            // dZ0 = PPR^T dZ = PPR dZ (symmetric polynomial of Â).
            let dz0 = self.ppr_propagate(&dz);
            let mut dw2 = ops::matmul_tn(&hd, &dz0);
            ops::axpy(&mut dw2, cfg.weight_decay, &self.w2);
            let dhd = ops::matmul_nt(&dz0, &self.w2);
            let mut dz1 = ops::hadamard(&dhd, &mask);
            relu_backward_inplace(&mut dz1, &z1);
            let mut dw1 = ops::matmul_tn(&self.x, &dz1);
            ops::axpy(&mut dw1, cfg.weight_decay, &self.w1);
            opt1.step(&mut self.w1, &dw1);
            opt2.step(&mut self.w2, &dw2);
            // ---- validation / hook ----
            if !val_idx.is_empty() || hook.is_some() {
                let probs = self.forward_eval();
                if let Some(hk) = hook.as_deref_mut() {
                    hk(epoch, &probs);
                }
                if !val_idx.is_empty() {
                    let va = accuracy(&probs, labels, val_idx);
                    if va > report.best_val_accuracy {
                        report.best_val_accuracy = va;
                        report.best_epoch = epoch;
                        best = (self.w1.clone(), self.w2.clone());
                        since_best = 0;
                    } else {
                        since_best += 1;
                        if let Some(p) = cfg.patience {
                            if since_best >= p && epoch + 1 >= cfg.min_epochs {
                                break;
                            }
                        }
                    }
                }
            }
        }
        if !val_idx.is_empty() {
            self.w1 = best.0;
            self.w2 = best.1;
        }
        report
    }

    fn predict(&self) -> DenseMatrix {
        self.forward_eval()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::toy_dataset;

    #[test]
    fn learns_two_community_classification() {
        let (g, x, labels) = toy_dataset(21);
        let train: Vec<u32> = vec![0, 1, 2, 3, 40, 41, 42, 43];
        let test: Vec<u32> = (10..40).chain(50..80).collect();
        let mut model = AppnpModel::new(&g, &x, 2, 16, 4, 0.1, 7);
        let cfg = TrainConfig {
            epochs: 120,
            dropout: 0.3,
            patience: None,
            ..Default::default()
        };
        model.train(&labels, &train, &[], &cfg);
        let acc = accuracy(&model.predict(), &labels, &test);
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn alpha_one_disables_propagation() {
        // With alpha = 1 the PPR fixpoint is Z0 itself.
        let (g, x, _) = toy_dataset(22);
        let model = AppnpModel::new(&g, &x, 2, 8, 5, 1.0, 3);
        let z0 = DenseMatrix::from_vec(
            g.num_nodes(),
            1,
            (0..g.num_nodes()).map(|i| i as f32).collect(),
        );
        assert_eq!(model.ppr_propagate(&z0), z0);
    }

    #[test]
    fn ppr_propagation_is_symmetric_operator() {
        // <PPR(a), b> == <a, PPR(b)> — the identity backprop relies on.
        let (g, x, _) = toy_dataset(23);
        let n = g.num_nodes();
        let model = AppnpModel::new(&g, &x, 2, 8, 3, 0.2, 4);
        let a = DenseMatrix::from_vec(n, 1, (0..n).map(|i| ((i * 7 % 5) as f32) - 2.0).collect());
        let b = DenseMatrix::from_vec(n, 1, (0..n).map(|i| ((i * 3 % 11) as f32) * 0.1).collect());
        let pa = model.ppr_propagate(&a);
        let pb = model.ppr_propagate(&b);
        let lhs = ops::dot(pa.as_slice(), b.as_slice());
        let rhs = ops::dot(a.as_slice(), pb.as_slice());
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn reset_is_deterministic() {
        let (g, x, _) = toy_dataset(24);
        let mut model = AppnpModel::new(&g, &x, 2, 8, 3, 0.1, 11);
        let p0 = model.predict();
        model.reset(11);
        assert_eq!(model.predict(), p0);
    }
}

//! Coupled 2-layer GCN (Kipf & Welling, Eq. 4 of the Grain paper) with
//! manual backpropagation.
//!
//! Forward pass (Â = symmetric-normalized adjacency with self-loops):
//!
//! ```text
//! Z1 = Â X W1          H1 = dropout(relu(Z1))
//! Z2 = Â H1 W2         P  = softmax(Z2)
//! ```
//!
//! `Â X` is constant across epochs and precomputed. Backprop exploits the
//! symmetry of `Â` (`Â^T = Â`), so the same SpMM kernel serves both
//! directions.

use crate::activ::{dropout_mask, relu_backward_inplace, relu_inplace, softmax_rows};
use crate::adam::Adam;
use crate::init::glorot_uniform;
use crate::loss::masked_cross_entropy;
use crate::metrics::accuracy;
use crate::model::{EpochHook, Model, TrainConfig, TrainReport};
use grain_graph::{transition_matrix, CsrMatrix, Graph, TransitionKind};
use grain_linalg::{ops, DenseMatrix};

/// Two-layer GCN bound to a graph and feature matrix.
pub struct GcnModel {
    a_hat: CsrMatrix,
    /// Precomputed `Â X`.
    ax: DenseMatrix,
    w1: DenseMatrix,
    w2: DenseMatrix,
    hidden: usize,
    num_classes: usize,
}

impl GcnModel {
    /// Builds the model (weights Glorot-initialized from `seed`).
    pub fn new(
        graph: &Graph,
        features: &DenseMatrix,
        num_classes: usize,
        hidden: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(
            graph.num_nodes(),
            features.rows(),
            "feature rows != node count"
        );
        assert!(num_classes >= 2 && hidden >= 1);
        let a_hat = transition_matrix(graph, TransitionKind::Symmetric, true);
        let ax = a_hat.spmm(features);
        let d = features.cols();
        Self {
            a_hat,
            ax,
            w1: glorot_uniform(d, hidden, seed),
            w2: glorot_uniform(hidden, num_classes, seed.wrapping_add(1)),
            hidden,
            num_classes,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn forward_eval(&self) -> DenseMatrix {
        let mut h1 = ops::matmul(&self.ax, &self.w1);
        relu_inplace(&mut h1);
        let ah1 = self.a_hat.spmm(&h1);
        softmax_rows(&ops::matmul(&ah1, &self.w2))
    }
}

impl Model for GcnModel {
    fn name(&self) -> &'static str {
        "gcn"
    }

    fn reset(&mut self, seed: u64) {
        self.w1 = glorot_uniform(self.ax.cols(), self.hidden, seed);
        self.w2 = glorot_uniform(self.hidden, self.num_classes, seed.wrapping_add(1));
    }

    fn train_with_hook(
        &mut self,
        labels: &[u32],
        train_idx: &[u32],
        val_idx: &[u32],
        cfg: &TrainConfig,
        mut hook: Option<&mut EpochHook<'_>>,
    ) -> TrainReport {
        assert_eq!(labels.len(), self.ax.rows(), "labels must cover all nodes");
        let n = self.ax.rows();
        let mut opt1 = Adam::new(self.w1.as_slice().len(), cfg.lr);
        let mut opt2 = Adam::new(self.w2.as_slice().len(), cfg.lr);
        let mut report = TrainReport::default();
        let mut best = (self.w1.clone(), self.w2.clone());
        let mut since_best = 0usize;
        for epoch in 0..cfg.epochs {
            report.epochs_run = epoch + 1;
            // ---- forward ----
            let z1 = ops::matmul(&self.ax, &self.w1);
            let mut h1 = z1.clone();
            relu_inplace(&mut h1);
            let mask = dropout_mask(n, self.hidden, cfg.dropout, cfg.seed ^ (epoch as u64) << 1);
            let h1d = ops::hadamard(&h1, &mask);
            let ah1 = self.a_hat.spmm(&h1d);
            let z2 = ops::matmul(&ah1, &self.w2);
            // ---- loss ----
            let (loss, dz2) = masked_cross_entropy(&z2, labels, train_idx);
            report.final_loss = loss;
            // ---- backward ----
            let mut dw2 = ops::matmul_tn(&ah1, &dz2);
            ops::axpy(&mut dw2, cfg.weight_decay, &self.w2);
            let dah1 = ops::matmul_nt(&dz2, &self.w2);
            let dh1d = self.a_hat.spmm(&dah1); // Â^T = Â
            let mut dz1 = ops::hadamard(&dh1d, &mask);
            relu_backward_inplace(&mut dz1, &z1);
            let mut dw1 = ops::matmul_tn(&self.ax, &dz1);
            ops::axpy(&mut dw1, cfg.weight_decay, &self.w1);
            opt1.step(&mut self.w1, &dw1);
            opt2.step(&mut self.w2, &dw2);
            // ---- validation / hook ----
            if !val_idx.is_empty() || hook.is_some() {
                let probs = self.forward_eval();
                if let Some(h) = hook.as_deref_mut() {
                    h(epoch, &probs);
                }
                if !val_idx.is_empty() {
                    let va = accuracy(&probs, labels, val_idx);
                    if va > report.best_val_accuracy {
                        report.best_val_accuracy = va;
                        report.best_epoch = epoch;
                        best = (self.w1.clone(), self.w2.clone());
                        since_best = 0;
                    } else {
                        since_best += 1;
                        if let Some(p) = cfg.patience {
                            if since_best >= p && epoch + 1 >= cfg.min_epochs {
                                break;
                            }
                        }
                    }
                }
            }
        }
        if !val_idx.is_empty() {
            self.w1 = best.0;
            self.w2 = best.1;
        }
        report
    }

    fn predict(&self) -> DenseMatrix {
        self.forward_eval()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_dataset;

    #[test]
    fn learns_two_community_classification() {
        let (g, x, labels) = toy_dataset(1);
        let train: Vec<u32> = vec![0, 1, 2, 3, 40, 41, 42, 43];
        let test: Vec<u32> = (10..40).chain(50..80).collect();
        let mut model = GcnModel::new(&g, &x, 2, 16, 7);
        let cfg = TrainConfig {
            epochs: 120,
            dropout: 0.3,
            patience: None,
            ..Default::default()
        };
        model.train(&labels, &train, &[], &cfg);
        let acc = accuracy(&model.predict(), &labels, &test);
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn reset_restores_untrained_state() {
        let (g, x, labels) = toy_dataset(2);
        let mut model = GcnModel::new(&g, &x, 2, 8, 3);
        let before = model.predict();
        let cfg = TrainConfig::fast();
        model.train(&labels, &[0, 40], &[], &cfg);
        assert_ne!(model.predict(), before);
        model.reset(3);
        // Reset with the construction seed reproduces initial predictions.
        assert_eq!(model.predict(), before);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let (g, x, labels) = toy_dataset(3);
        let train: Vec<u32> = (0..6).chain(40..46).collect();
        let val: Vec<u32> = (20..30).chain(60..70).collect();
        // Init seed matters: a minority of draws start in a dead basin and
        // never leave chance accuracy; this seed learns under the workspace
        // RNG stream.
        let mut model = GcnModel::new(&g, &x, 2, 8, 5);
        let cfg = TrainConfig {
            epochs: 400,
            patience: Some(10),
            ..Default::default()
        };
        let rep = model.train(&labels, &train, &val, &cfg);
        assert!(rep.epochs_run < 400);
        assert!(
            rep.best_val_accuracy > 0.7,
            "best_val_accuracy {} epochs {}",
            rep.best_val_accuracy,
            rep.epochs_run
        );
    }

    #[test]
    fn hook_sees_probability_matrices() {
        let (g, x, labels) = toy_dataset(4);
        let mut model = GcnModel::new(&g, &x, 2, 8, 5);
        let mut rows_seen = Vec::new();
        let mut hook = |e: usize, p: &DenseMatrix| {
            if e == 0 {
                rows_seen.push(p.rows());
            }
        };
        let cfg = TrainConfig {
            epochs: 3,
            patience: None,
            ..Default::default()
        };
        model.train_with_hook(&labels, &[0, 40], &[], &cfg, Some(&mut hook));
        assert_eq!(rows_seen, vec![g.num_nodes()]);
    }

    #[test]
    fn predictions_are_distributions() {
        let (g, x, _) = toy_dataset(5);
        let model = GcnModel::new(&g, &x, 2, 8, 6);
        let p = model.predict();
        for i in 0..p.rows() {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}

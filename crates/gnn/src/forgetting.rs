//! Forgetting-events tracking (Toneva et al. 2019), the signal behind the
//! forgetting core-set baseline in §2.1.
//!
//! A *forgetting event* for example `i` is an epoch transition where `i`
//! goes from correctly to incorrectly classified. Examples forgotten often
//! are deemed hard/informative; the core-set keeps the most-forgotten ones.

use crate::model::predicted_classes;
use grain_linalg::DenseMatrix;

/// Accumulates forgetting events across training epochs.
#[derive(Clone, Debug)]
pub struct ForgettingTracker {
    labels: Vec<u32>,
    tracked: Vec<u32>,
    last_correct: Vec<bool>,
    ever_correct: Vec<bool>,
    forget_counts: Vec<u32>,
    epochs_seen: usize,
}

impl ForgettingTracker {
    /// Tracks the given node indices against their ground-truth labels.
    pub fn new(labels: &[u32], tracked: &[u32]) -> Self {
        Self {
            labels: labels.to_vec(),
            tracked: tracked.to_vec(),
            last_correct: vec![false; tracked.len()],
            ever_correct: vec![false; tracked.len()],
            forget_counts: vec![0; tracked.len()],
            epochs_seen: 0,
        }
    }

    /// Feeds one epoch's full-graph probabilities (the [`crate::model::EpochHook`]
    /// signature adapts directly onto this).
    pub fn observe(&mut self, probs: &DenseMatrix) {
        let preds = predicted_classes(probs);
        for (slot, &node) in self.tracked.iter().enumerate() {
            let correct = preds[node as usize] == self.labels[node as usize];
            if self.last_correct[slot] && !correct {
                self.forget_counts[slot] += 1;
            }
            if correct {
                self.ever_correct[slot] = true;
            }
            self.last_correct[slot] = correct;
        }
        self.epochs_seen += 1;
    }

    /// Number of epochs observed.
    pub fn epochs_seen(&self) -> usize {
        self.epochs_seen
    }

    /// Forgetting score per tracked node: the forgetting-event count, with
    /// never-learned examples treated as maximally forgotten (the paper's
    /// convention — they are the hardest examples).
    pub fn scores(&self) -> Vec<(u32, u32)> {
        let max_score = self.epochs_seen as u32 + 1;
        self.tracked
            .iter()
            .enumerate()
            .map(|(slot, &node)| {
                let score = if self.ever_correct[slot] {
                    self.forget_counts[slot]
                } else {
                    max_score
                };
                (node, score)
            })
            .collect()
    }

    /// The `count` most-forgotten tracked nodes (ties break toward smaller
    /// node id for determinism).
    pub fn most_forgotten(&self, count: usize) -> Vec<u32> {
        let mut scored = self.scores();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
            .into_iter()
            .take(count)
            .map(|(node, _)| node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs_for(preds: &[u32], classes: usize) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(preds.len(), classes);
        for (i, &p) in preds.iter().enumerate() {
            m.set(i, p as usize, 1.0);
        }
        m
    }

    #[test]
    fn counts_correct_to_incorrect_transitions() {
        let labels = [0u32, 1, 1];
        let mut t = ForgettingTracker::new(&labels, &[0, 1, 2]);
        t.observe(&probs_for(&[0, 1, 0], 2)); // node0 ok, node1 ok, node2 wrong
        t.observe(&probs_for(&[1, 1, 1], 2)); // node0 forgotten, node2 learned
        t.observe(&probs_for(&[0, 0, 0], 2)); // node1+node2 forgotten
        let scores: std::collections::HashMap<u32, u32> = t.scores().into_iter().collect();
        assert_eq!(scores[&0], 1);
        assert_eq!(scores[&1], 1);
        assert_eq!(scores[&2], 1);
    }

    #[test]
    fn never_learned_scores_highest() {
        let labels = [0u32, 1];
        let mut t = ForgettingTracker::new(&labels, &[0, 1]);
        for _ in 0..5 {
            t.observe(&probs_for(&[0, 0], 2)); // node1 never correct
        }
        let top = t.most_forgotten(1);
        assert_eq!(top, vec![1]);
    }

    #[test]
    fn stable_learner_has_zero_score() {
        let labels = [0u32];
        let mut t = ForgettingTracker::new(&labels, &[0]);
        for _ in 0..4 {
            t.observe(&probs_for(&[0], 2));
        }
        assert_eq!(t.scores(), vec![(0, 0)]);
    }

    #[test]
    fn most_forgotten_breaks_ties_by_id() {
        let labels = [0u32, 0];
        let mut t = ForgettingTracker::new(&labels, &[0, 1]);
        t.observe(&probs_for(&[0, 0], 2));
        t.observe(&probs_for(&[1, 1], 2));
        assert_eq!(t.most_forgotten(2), vec![0, 1]);
    }
}

//! Adam optimizer (Kingma & Ba) with decoupled-style L2 handled by the
//! caller adding `wd * W` into the gradient (the PyTorch-GCN convention the
//! paper's hyper-parameters assume).

use grain_linalg::DenseMatrix;

/// Adam state for one parameter matrix.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: i32,
}

impl Adam {
    /// Optimizer for a parameter with `size` entries at learning rate `lr`
    /// and default betas `(0.9, 0.999)`.
    pub fn new(size: usize, lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; size],
            v: vec![0.0; size],
            t: 0,
        }
    }

    /// Applies one update `param -= lr * m̂ / (sqrt(v̂) + eps)`.
    ///
    /// # Panics
    /// Panics if shapes drift from the construction size.
    pub fn step(&mut self, param: &mut DenseMatrix, grad: &DenseMatrix) {
        assert_eq!(
            param.shape(),
            grad.shape(),
            "adam: param/grad shape mismatch"
        );
        assert_eq!(
            param.as_slice().len(),
            self.m.len(),
            "adam: state size mismatch"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for ((p, &g), (m, v)) in param
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Resets moments and step count (used when a model is re-initialized).
    pub fn reset(&mut self) {
        self.m.fill(0.0);
        self.v.fill(0.0);
        self.t = 0;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x - 3)^2, df = 2(x - 3).
        let mut x = DenseMatrix::from_vec(1, 1, vec![0.0]);
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = DenseMatrix::from_vec(1, 1, vec![2.0 * (x.get(0, 0) - 3.0)]);
            opt.step(&mut x, &g);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 1e-2, "x = {}", x.get(0, 0));
    }

    #[test]
    fn first_step_moves_by_lr() {
        // Adam's bias correction makes the first update exactly lr-sized.
        let mut x = DenseMatrix::from_vec(1, 1, vec![1.0]);
        let mut opt = Adam::new(1, 0.05);
        opt.step(&mut x, &DenseMatrix::from_vec(1, 1, vec![4.2]));
        assert!((x.get(0, 0) - (1.0 - 0.05)).abs() < 1e-4);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut x = DenseMatrix::from_vec(1, 1, vec![1.0]);
        let mut opt = Adam::new(1, 0.05);
        opt.step(&mut x, &DenseMatrix::from_vec(1, 1, vec![1.0]));
        opt.reset();
        let mut y = DenseMatrix::from_vec(1, 1, vec![1.0]);
        opt.step(&mut y, &DenseMatrix::from_vec(1, 1, vec![1.0]));
        assert!((y.get(0, 0) - 0.95).abs() < 1e-4);
    }

    #[test]
    fn zero_gradient_keeps_param() {
        let mut x = DenseMatrix::from_vec(1, 2, vec![0.5, -0.5]);
        let mut opt = Adam::new(2, 0.1);
        opt.step(&mut x, &DenseMatrix::zeros(1, 2));
        assert_eq!(x.row(0), &[0.5, -0.5]);
    }
}

//! Shared linear softmax head over a fixed (precomputed) embedding.
//!
//! SGC and MVGRL-sim are both "frozen embedding + logistic regression"
//! models; this head implements that training loop once. A constant bias
//! column is appended to the embedding so the head needs a single weight
//! matrix.

use crate::activ::softmax_rows;
use crate::adam::Adam;
use crate::init::glorot_uniform;
use crate::loss::masked_cross_entropy;
use crate::metrics::accuracy;
use crate::model::{EpochHook, TrainConfig, TrainReport};
use grain_linalg::{ops, DenseMatrix};

/// Linear softmax classifier over a frozen embedding.
#[derive(Clone, Debug)]
pub struct LinearHead {
    /// Embedding with a trailing constant-1 bias column (`n x (d+1)`).
    x: DenseMatrix,
    w: DenseMatrix,
    num_classes: usize,
    seed: u64,
}

impl LinearHead {
    /// Builds a head over `embedding` (bias column appended internally).
    pub fn new(embedding: &DenseMatrix, num_classes: usize, seed: u64) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        let bias = DenseMatrix::full(embedding.rows(), 1, 1.0);
        let x = embedding.hconcat(&bias);
        let w = glorot_uniform(x.cols(), num_classes, seed);
        Self {
            x,
            w,
            num_classes,
            seed,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Re-initializes weights from `seed`.
    pub fn reset(&mut self, seed: u64) {
        self.seed = seed;
        self.w = glorot_uniform(self.x.cols(), self.num_classes, seed);
    }

    /// Full-graph probabilities.
    pub fn predict(&self) -> DenseMatrix {
        softmax_rows(&ops::matmul(&self.x, &self.w))
    }

    /// Full-batch Adam training with optional early stopping and hook.
    pub fn train(
        &mut self,
        labels: &[u32],
        train_idx: &[u32],
        val_idx: &[u32],
        cfg: &TrainConfig,
        mut hook: Option<&mut EpochHook<'_>>,
    ) -> TrainReport {
        assert_eq!(labels.len(), self.x.rows(), "labels must cover all nodes");
        let mut opt = Adam::new(self.w.as_slice().len(), cfg.lr);
        let mut report = TrainReport::default();
        let mut best_w = self.w.clone();
        let mut since_best = 0usize;
        for epoch in 0..cfg.epochs {
            report.epochs_run = epoch + 1;
            let logits = ops::matmul(&self.x, &self.w);
            let (loss, dlogits) = masked_cross_entropy(&logits, labels, train_idx);
            report.final_loss = loss;
            let mut dw = ops::matmul_tn(&self.x, &dlogits);
            ops::axpy(&mut dw, cfg.weight_decay, &self.w);
            opt.step(&mut self.w, &dw);

            let need_probs = !val_idx.is_empty() || hook.is_some();
            if need_probs {
                let probs = self.predict();
                if let Some(h) = hook.as_deref_mut() {
                    h(epoch, &probs);
                }
                if !val_idx.is_empty() {
                    let va = accuracy(&probs, labels, val_idx);
                    if va > report.best_val_accuracy {
                        report.best_val_accuracy = va;
                        report.best_epoch = epoch;
                        best_w = self.w.clone();
                        since_best = 0;
                    } else {
                        since_best += 1;
                        if let Some(p) = cfg.patience {
                            if since_best >= p && epoch + 1 >= cfg.min_epochs {
                                break;
                            }
                        }
                    }
                }
            }
        }
        if !val_idx.is_empty() {
            self.w = best_w;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable two-class embedding.
    fn toy() -> (DenseMatrix, Vec<u32>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let (cx, label) = if i < 20 { (-2.0, 0u32) } else { (2.0, 1u32) };
            data.extend_from_slice(&[cx + (i % 5) as f32 * 0.1, (i % 7) as f32 * 0.05]);
            labels.push(label);
        }
        (DenseMatrix::from_vec(40, 2, data), labels)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (x, labels) = toy();
        let idx: Vec<u32> = (0..40).collect();
        let mut head = LinearHead::new(&x, 2, 1);
        let cfg = TrainConfig {
            epochs: 200,
            patience: None,
            dropout: 0.0,
            ..Default::default()
        };
        head.train(&labels, &idx, &[], &cfg, None);
        let acc = accuracy(&head.predict(), &labels, &idx);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn early_stopping_halts_before_epochs() {
        let (x, labels) = toy();
        let train: Vec<u32> = (0..20).chain(20..30).collect();
        let val: Vec<u32> = (30..40).collect();
        let mut head = LinearHead::new(&x, 2, 2);
        let cfg = TrainConfig {
            epochs: 500,
            patience: Some(5),
            ..Default::default()
        };
        let rep = head.train(&labels, &train, &val, &cfg, None);
        assert!(rep.epochs_run < 500, "ran all {} epochs", rep.epochs_run);
        assert!(rep.best_val_accuracy > 0.9);
    }

    #[test]
    fn hook_fires_every_epoch() {
        let (x, labels) = toy();
        let idx: Vec<u32> = (0..40).collect();
        let mut head = LinearHead::new(&x, 2, 3);
        let mut count = 0usize;
        let cfg = TrainConfig {
            epochs: 7,
            patience: None,
            ..Default::default()
        };
        let mut hook = |_e: usize, _p: &DenseMatrix| count += 1;
        head.train(&labels, &idx, &[], &cfg, Some(&mut hook));
        assert_eq!(count, 7);
    }

    #[test]
    fn reset_changes_weights_deterministically() {
        let (x, _) = toy();
        let mut a = LinearHead::new(&x, 2, 5);
        let mut b = LinearHead::new(&x, 2, 6);
        a.reset(9);
        b.reset(9);
        assert_eq!(a.predict(), b.predict());
    }
}

//! Masked softmax cross-entropy.
//!
//! Semi-supervised node classification trains on a handful of labeled rows
//! while predicting all rows; the loss and its gradient therefore apply
//! only to `train_idx` rows (gradient rows elsewhere are zero).

use crate::activ::softmax_rows;
use grain_linalg::DenseMatrix;

/// Mean cross-entropy over the masked rows plus the gradient
/// `∂L/∂logits` (zero outside the mask).
///
/// # Panics
/// Panics if a label is out of class range or the mask is empty.
pub fn masked_cross_entropy(
    logits: &DenseMatrix,
    labels: &[u32],
    train_idx: &[u32],
) -> (f64, DenseMatrix) {
    assert!(
        !train_idx.is_empty(),
        "cross-entropy needs at least one labeled row"
    );
    assert_eq!(logits.rows(), labels.len(), "labels must cover all rows");
    let c = logits.cols();
    let probs = softmax_rows(logits);
    let inv = 1.0 / train_idx.len() as f32;
    let mut grad = DenseMatrix::zeros(logits.rows(), c);
    let mut loss = 0.0f64;
    for &i in train_idx {
        let i = i as usize;
        let y = labels[i] as usize;
        assert!(y < c, "label {y} out of range for {c} classes");
        let p = probs.row(i);
        loss -= (p[y].max(1e-12) as f64).ln();
        let g = grad.row_mut(i);
        for (j, gj) in g.iter_mut().enumerate() {
            *gj = (p[j] - if j == y { 1.0 } else { 0.0 }) * inv;
        }
    }
    (loss / train_idx.len() as f64, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = DenseMatrix::from_vec(2, 2, vec![10., -10., -10., 10.]);
        let (loss, _) = masked_cross_entropy(&logits, &[0, 1], &[0, 1]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn uniform_prediction_loss_is_log_c() {
        let logits = DenseMatrix::zeros(3, 4);
        let (loss, _) = masked_cross_entropy(&logits, &[0, 1, 2], &[0, 1, 2]);
        assert!((loss - (4f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_zero_outside_mask() {
        let logits = DenseMatrix::from_vec(3, 2, vec![1., 0., 0., 1., 0.5, 0.5]);
        let (_, grad) = masked_cross_entropy(&logits, &[0, 1, 0], &[1]);
        assert!(grad.row(0).iter().all(|&v| v == 0.0));
        assert!(grad.row(2).iter().all(|&v| v == 0.0));
        assert!(grad.row(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // softmax - onehot always sums to zero per row.
        let logits = DenseMatrix::from_vec(2, 3, vec![0.3, -1., 2., 0., 0., 0.]);
        let (_, grad) = masked_cross_entropy(&logits, &[2, 0], &[0, 1]);
        for i in 0..2 {
            let s: f32 = grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = DenseMatrix::from_vec(2, 3, vec![0.2, -0.4, 0.7, 1.1, 0.0, -0.3]);
        let labels = [2u32, 0u32];
        let mask = [0u32, 1u32];
        let (_, grad) = masked_cross_entropy(&logits, &labels, &mask);
        let h = 1e-3f32;
        for i in 0..2 {
            for j in 0..3 {
                let orig = logits.get(i, j);
                logits.set(i, j, orig + h);
                let (lp, _) = masked_cross_entropy(&logits, &labels, &mask);
                logits.set(i, j, orig - h);
                let (lm, _) = masked_cross_entropy(&logits, &labels, &mask);
                logits.set(i, j, orig);
                let fd = ((lp - lm) / (2.0 * h as f64)) as f32;
                assert!(
                    (fd - grad.get(i, j)).abs() < 1e-3,
                    "fd {fd} vs analytic {} at ({i},{j})",
                    grad.get(i, j)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one labeled row")]
    fn empty_mask_panics() {
        let logits = DenseMatrix::zeros(2, 2);
        let _ = masked_cross_entropy(&logits, &[0, 1], &[]);
    }
}

//! From-scratch GNN training substrate.
//!
//! The paper evaluates selections by training downstream GNNs on the
//! selected labels. No GNN library exists in this environment, so this
//! crate implements the four models of Section 4.5 directly on the
//! workspace's dense/sparse kernels, with manual backpropagation and Adam:
//!
//! * [`gcn::GcnModel`] — the coupled 2-layer GCN of Eq. 4 (Kipf & Welling),
//! * [`sgc::SgcModel`] — SGC: k-step smoothing + a linear softmax head,
//! * [`appnp::AppnpModel`] — APPNP: MLP followed by PPR propagation of
//!   logits, backpropagated through the propagation,
//! * [`mvgrl::MvgrlSimModel`] — the documented MVGRL substitute: a frozen
//!   two-structural-view embedding (symmetric smoothing ⊕ PPR diffusion)
//!   with a trained linear head (linear-evaluation protocol).
//!
//! All models implement the object-safe [`model::Model`] trait consumed by
//! the selection baselines (AGE/ANRMAB retrain a model every round) and the
//! experiment harness. Training is full-batch, deterministic per seed, and
//! supports validation-based early stopping plus per-epoch hooks (used by
//! the forgetting-events core-set baseline).
//!
//! ```
//! use grain_gnn::sgc::SgcModel;
//! use grain_gnn::{metrics, Model, TrainConfig};
//! use grain_graph::generators;
//! use grain_linalg::DenseMatrix;
//!
//! // Two feature-separable classes on a small random graph.
//! let g = generators::erdos_renyi_gnm(60, 180, 9);
//! let labels: Vec<u32> = (0..60).map(|v| (v % 2) as u32).collect();
//! let mut x = DenseMatrix::zeros(60, 4);
//! for v in 0..60 {
//!     x.row_mut(v)[v % 2] = 1.0;
//! }
//!
//! // SGC = 2-step smoothing + a linear softmax head, trained full-batch.
//! let mut model = SgcModel::new(&g, &x, 2, 2, 0);
//! let train: Vec<u32> = (0..40).collect();
//! let val: Vec<u32> = (40..50).collect();
//! let report = model.train(&labels, &train, &val, &TrainConfig::fast());
//! assert!(report.epochs_run > 0);
//!
//! let test: Vec<u32> = (50..60).collect();
//! let acc = metrics::accuracy(&model.predict(), &labels, &test);
//! assert!((0.0..=1.0).contains(&acc));
//! ```

pub mod activ;
pub mod adam;
pub mod appnp;
pub mod forgetting;
pub mod gcn;
pub mod init;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod mvgrl;
pub mod sgc;

pub use model::{Model, TrainConfig, TrainReport};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared test fixtures.
    use grain_graph::generators::{degree_corrected_sbm, SbmConfig};
    use grain_graph::Graph;
    use grain_linalg::DenseMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two-community SBM with class-separable features.
    pub(crate) fn toy_dataset(seed: u64) -> (Graph, DenseMatrix, Vec<u32>) {
        let cfg = SbmConfig {
            block_sizes: vec![40, 40],
            mean_degree_in: 6.0,
            mean_degree_out: 0.5,
            degree_exponent: 0.0,
        };
        let (g, labels) = degree_corrected_sbm(&cfg, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut x = DenseMatrix::zeros(g.num_nodes(), 4);
        for (v, &label) in labels.iter().enumerate() {
            let c = label as usize;
            let row = x.row_mut(v);
            for (j, val) in row.iter_mut().enumerate() {
                *val = if j % 2 == c { 0.9 } else { 0.1 } + rng.random::<f32>() * 0.3;
            }
        }
        (g, x, labels)
    }
}

//! SGC (Wu et al. 2019): collapse the GCN into `softmax(Â^k X W)` —
//! k-step symmetric smoothing precomputed once, then a linear head.

use crate::linear::LinearHead;
use crate::model::{EpochHook, Model, TrainConfig, TrainReport};
use grain_graph::Graph;
use grain_linalg::DenseMatrix;
use grain_prop::{propagate, Kernel};

/// SGC model: frozen `Â^k X` + logistic regression.
pub struct SgcModel {
    head: LinearHead,
}

impl SgcModel {
    /// Builds the model with `k`-step symmetric smoothing.
    pub fn new(
        graph: &Graph,
        features: &DenseMatrix,
        num_classes: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        let smoothed = propagate(graph, Kernel::SymNorm { k }, features);
        Self {
            head: LinearHead::new(&smoothed, num_classes, seed),
        }
    }

    /// Builds from an already-propagated embedding (lets callers share the
    /// propagation cache with the selector).
    pub fn from_embedding(embedding: &DenseMatrix, num_classes: usize, seed: u64) -> Self {
        Self {
            head: LinearHead::new(embedding, num_classes, seed),
        }
    }
}

impl Model for SgcModel {
    fn name(&self) -> &'static str {
        "sgc"
    }

    fn reset(&mut self, seed: u64) {
        self.head.reset(seed);
    }

    fn train_with_hook(
        &mut self,
        labels: &[u32],
        train_idx: &[u32],
        val_idx: &[u32],
        cfg: &TrainConfig,
        hook: Option<&mut EpochHook<'_>>,
    ) -> TrainReport {
        self.head.train(labels, train_idx, val_idx, cfg, hook)
    }

    fn predict(&self) -> DenseMatrix {
        self.head.predict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::testutil::toy_dataset;

    #[test]
    fn learns_two_community_classification() {
        let (g, x, labels) = toy_dataset(11);
        let train: Vec<u32> = vec![0, 1, 2, 3, 40, 41, 42, 43];
        let test: Vec<u32> = (10..40).chain(50..80).collect();
        let mut model = SgcModel::new(&g, &x, 2, 2, 1);
        let cfg = TrainConfig {
            epochs: 150,
            patience: None,
            ..Default::default()
        };
        model.train(&labels, &train, &[], &cfg);
        let acc = accuracy(&model.predict(), &labels, &test);
        assert!(acc > 0.85, "test accuracy {acc}");
    }

    #[test]
    fn smoothing_beats_no_smoothing_on_homophilous_graph() {
        let (g, x, labels) = toy_dataset(12);
        let train: Vec<u32> = vec![0, 1, 40, 41];
        let test: Vec<u32> = (10..40).chain(50..80).collect();
        let cfg = TrainConfig {
            epochs: 150,
            patience: None,
            ..Default::default()
        };
        let mut smoothed = SgcModel::new(&g, &x, 2, 2, 1);
        smoothed.train(&labels, &train, &[], &cfg);
        let mut raw = SgcModel::new(&g, &x, 2, 0, 1);
        raw.train(&labels, &train, &[], &cfg);
        let acc_s = accuracy(&smoothed.predict(), &labels, &test);
        let acc_r = accuracy(&raw.predict(), &labels, &test);
        assert!(
            acc_s >= acc_r - 0.02,
            "smoothing hurt badly: {acc_s} vs {acc_r}"
        );
    }

    #[test]
    fn name_and_reset_behave() {
        let (g, x, _) = toy_dataset(13);
        let mut model = SgcModel::new(&g, &x, 2, 2, 5);
        assert_eq!(model.name(), "sgc");
        let p0 = model.predict();
        model.reset(5);
        assert_eq!(model.predict(), p0);
    }
}

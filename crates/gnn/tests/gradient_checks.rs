//! Numerical gradient checks: one full training step of each model must
//! reduce the training loss on a fittable problem, and repeated steps must
//! drive it near zero — the integration-level counterpart of the unit-level
//! finite-difference test in `loss.rs`.

use grain_gnn::appnp::AppnpModel;
use grain_gnn::gcn::GcnModel;
use grain_gnn::sgc::SgcModel;
use grain_gnn::{Model, TrainConfig};
use grain_graph::generators::{degree_corrected_sbm, SbmConfig};
use grain_graph::Graph;
use grain_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixture(seed: u64) -> (Graph, DenseMatrix, Vec<u32>) {
    let cfg = SbmConfig {
        block_sizes: vec![30, 30],
        mean_degree_in: 5.0,
        mean_degree_out: 0.5,
        degree_exponent: 0.0,
    };
    let (g, labels) = degree_corrected_sbm(&cfg, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = DenseMatrix::zeros(60, 6);
    for (v, &label) in labels.iter().enumerate() {
        let c = label as usize;
        for j in 0..6 {
            let base = if j % 2 == c { 0.8 } else { 0.1 };
            x.set(v, j, base + rng.random::<f32>() * 0.2);
        }
    }
    (g, x, labels)
}

fn overfit_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 300,
        dropout: 0.0,
        weight_decay: 0.0,
        patience: None,
        ..Default::default()
    }
}

#[test]
fn gcn_overfits_small_training_set() {
    let (g, x, labels) = fixture(1);
    let train: Vec<u32> = (0..10).chain(30..40).collect();
    let mut model = GcnModel::new(&g, &x, 2, 16, 2);
    let report = model.train(&labels, &train, &[], &overfit_cfg());
    assert!(
        report.final_loss < 0.05,
        "GCN failed to overfit: loss {}",
        report.final_loss
    );
}

#[test]
fn appnp_overfits_small_training_set() {
    let (g, x, labels) = fixture(2);
    let train: Vec<u32> = (0..10).chain(30..40).collect();
    let mut model = AppnpModel::new(&g, &x, 2, 16, 3, 0.2, 3);
    let report = model.train(&labels, &train, &[], &overfit_cfg());
    assert!(
        report.final_loss < 0.1,
        "APPNP failed to overfit: loss {}",
        report.final_loss
    );
}

#[test]
fn sgc_overfits_small_training_set() {
    let (g, x, labels) = fixture(3);
    let train: Vec<u32> = (0..10).chain(30..40).collect();
    let mut model = SgcModel::new(&g, &x, 2, 2, 4);
    let report = model.train(&labels, &train, &[], &overfit_cfg());
    assert!(
        report.final_loss < 0.1,
        "SGC failed to overfit: loss {}",
        report.final_loss
    );
}

#[test]
fn training_loss_decreases_monotonically_in_trend() {
    // Not strictly monotone (Adam + full-batch), but the mean loss of the
    // last quarter must be far below the first quarter.
    let (g, x, labels) = fixture(4);
    let train: Vec<u32> = (0..15).chain(30..45).collect();
    let mut model = GcnModel::new(&g, &x, 2, 16, 5);
    let mut losses = Vec::new();
    // Track loss through repeated short trainings continuing the weights:
    // a fresh Adam per call is fine for the trend check.
    for _ in 0..8 {
        let cfg = TrainConfig {
            epochs: 10,
            dropout: 0.0,
            weight_decay: 0.0,
            patience: None,
            ..Default::default()
        };
        let rep = model.train(&labels, &train, &[], &cfg);
        losses.push(rep.final_loss);
    }
    let first = losses[0];
    let last = *losses.last().unwrap();
    assert!(last < first * 0.5, "loss trend flat: {losses:?}");
}

#[test]
fn weight_decay_shrinks_weight_norms() {
    let (g, x, labels) = fixture(5);
    let train: Vec<u32> = (0..10).chain(30..40).collect();
    let run = |wd: f32| {
        let mut model = SgcModel::new(&g, &x, 2, 2, 6);
        let cfg = TrainConfig {
            epochs: 150,
            dropout: 0.0,
            weight_decay: wd,
            patience: None,
            ..Default::default()
        };
        model.train(&labels, &train, &[], &cfg);
        // Probe the weight scale through prediction confidence.
        let probs = model.predict();
        let mut max_conf = 0.0f32;
        for i in 0..probs.rows() {
            for &p in probs.row(i) {
                max_conf = max_conf.max(p);
            }
        }
        max_conf
    };
    let free = run(0.0);
    let decayed = run(0.05);
    assert!(
        decayed < free,
        "weight decay did not soften predictions: {decayed} vs {free}"
    );
}

//! The resilience contract: cooperative cancellation stops work at
//! checkpoints without corrupting any cache, partial results are exact
//! prefixes of the uncancelled run, refcounted cancel never kills a
//! result a coalesced sibling still wants, and injected panics stay
//! isolated to the request that hit them.
//!
//! The `fault_injection` module (feature `fault-injection`) drives the
//! deterministic fail-point registry in `grain::core::fault`. The
//! registry is process-global, so every test that arms a site holds one
//! static mutex for its whole body — sites like `greedy.round` are
//! crossed by any concurrently running selection, and an armed fault
//! leaking into a sibling test would be a flake factory.

use grain::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn service_with(graphs: &[(&str, u64)]) -> Arc<GrainService> {
    let service = Arc::new(GrainService::new());
    for &(id, seed) in graphs {
        let dataset = grain::data::synthetic::papers_like(300, seed);
        service
            .register_graph(id, dataset.graph.clone(), dataset.features.clone())
            .unwrap();
    }
    service
}

fn request(graph: &str, budget: usize) -> SelectionRequest {
    SelectionRequest::new(graph, GrainConfig::ball_d(), Budget::Fixed(budget))
}

fn paused(service: &Arc<GrainService>) -> Scheduler {
    Scheduler::new(
        Arc::clone(service),
        SchedulerConfig {
            start_paused: true,
            ..SchedulerConfig::default()
        },
    )
}

/// Cancelling every ticket of a coalesced group — the last one mid-queue
/// — discards the slot without running it, while a sibling group is
/// untouched; cancelling only *some* tickets leaves the survivors'
/// answer bit-identical to the serial oracle.
#[test]
fn refcounted_cancel_detaches_waiters_and_only_the_last_stops_the_run() {
    let service = service_with(&[("papers", 71)]);
    let oracle = service.select(&request("papers", 8)).unwrap();

    let scheduler = paused(&service);
    let survivor = scheduler.submit(request("papers", 8)).unwrap();
    let quitters: Vec<Ticket> = (0..3)
        .map(|_| scheduler.submit(request("papers", 8)).unwrap())
        .collect();
    let doomed: Vec<Ticket> = (0..2)
        .map(|_| scheduler.submit(request("papers", 5)).unwrap())
        .collect();
    assert_eq!(scheduler.queue_depth(), 2);

    // Every waiter of the budget-5 slot cancels: that run never happens.
    for ticket in &doomed {
        ticket.cancel();
    }
    // Only some waiters of the budget-8 slot cancel: the run proceeds.
    for ticket in &quitters {
        ticket.cancel();
    }
    scheduler.resume();

    let report = survivor.wait().unwrap();
    assert_eq!(report.outcome().selected, oracle.outcome().selected);
    assert_eq!(
        report.outcome().objective_trace,
        oracle.outcome().objective_trace
    );
    assert!(!report.is_partial());
    for ticket in quitters.into_iter().chain(doomed) {
        assert_eq!(ticket.wait().unwrap_err(), GrainError::Cancelled);
    }
    while !scheduler.is_idle() {
        std::thread::yield_now();
    }
    let stats = scheduler.stats();
    assert_eq!(stats.cancelled, 5, "{stats:?}");
    assert_eq!(
        stats.selections, 1,
        "the fully-cancelled slot never ran: {stats:?}"
    );
    assert_eq!(stats.delivered, 1, "{stats:?}");
}

/// Cancelling a ticket whose selection may already be running (a cold
/// build, even) must resolve the ticket typed and leave the service
/// fully usable: whichever side of the race the cancel lands on, the
/// next identical request answers bit-identically to a fresh service.
#[test]
fn cancel_racing_a_cold_build_fails_typed_without_wedging_anything() {
    let fresh = service_with(&[("papers", 77)]);
    let oracle = fresh.select(&request("papers", 7)).unwrap();

    let service = service_with(&[("papers", 77)]);
    let scheduler = paused(&service);
    let ticket = scheduler.submit(request("papers", 7)).unwrap();
    scheduler.resume();
    // Race the cancel against the running cold build on purpose; the
    // contract must hold on both sides.
    std::thread::sleep(Duration::from_millis(2));
    ticket.cancel();
    assert_eq!(ticket.wait().unwrap_err(), GrainError::Cancelled);

    // No wedged latch, no torn artifact: the same request still answers,
    // byte-for-byte as a fresh service would.
    let retry = scheduler.submit(request("papers", 7)).unwrap();
    let report = retry.wait().unwrap();
    assert_eq!(report.outcome().selected, oracle.outcome().selected);
    assert_eq!(scheduler.stats().cancelled, 1);
}

/// `RetryPolicy` turns transient admission failures into eventual
/// success: a full queue drains and the capped-backoff retry gets in.
#[test]
fn retry_policy_rides_out_a_full_queue() {
    let service = service_with(&[("papers", 73)]);
    let scheduler = Arc::new(Scheduler::new(
        Arc::clone(&service),
        SchedulerConfig {
            queue_capacity: 1,
            start_paused: true,
            ..SchedulerConfig::default()
        },
    ));
    let first = scheduler.submit(request("papers", 6)).unwrap();
    // The queue is full; an immediate distinct submission is refused.
    assert!(matches!(
        scheduler.submit(request("papers", 4)).unwrap_err(),
        GrainError::QueueFull { .. }
    ));

    let resumer = {
        let scheduler = Arc::clone(&scheduler);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            scheduler.resume();
        })
    };
    let policy = RetryPolicy {
        max_attempts: 200,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(10),
    };
    let ticket = policy
        .run(|| scheduler.submit(request("papers", 4)))
        .expect("the queue drains and a retry is admitted");
    assert_eq!(ticket.wait().unwrap().outcome().selected.len(), 4);
    assert_eq!(first.wait().unwrap().outcome().selected.len(), 6);
    resumer.join().unwrap();
    assert!(scheduler.stats().rejected_queue_full >= 1);
}

/// A client that vanishes mid-flight takes its work with it: reader EOF
/// trips the `CancelToken` of everything the connection still has
/// queued, the slots are discarded without executing, and the server
/// keeps serving everyone else.
#[test]
fn client_disconnect_cancels_everything_still_outstanding() {
    use grain::core::edge::RequestOptions;
    let service = service_with(&[("papers", 71)]);
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        EdgeConfig {
            max_connections: 4,
            tenants: vec![TenantSpec::open("gold", 1)],
            scheduler: SchedulerConfig {
                start_paused: true,
                ..SchedulerConfig::default()
            },
            ..EdgeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut client = EdgeClient::connect(addr, "gold", "").unwrap();
    for budget in [4, 5, 6] {
        client
            .send(request("papers", budget), RequestOptions::default())
            .unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.scheduler().queue_depth() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "submissions never queued"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    client.abandon();
    // Reader EOF → every outstanding request's CancelToken trips.
    while server.scheduler().stats().cancelled < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "disconnect never cancelled the outstanding work: {:?}",
            server.scheduler().stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(server.stats().disconnect_cancels >= 1);

    // Released, the queue discards the cancelled slots without running
    // a single selection.
    server.scheduler().resume();
    while !server.scheduler().is_idle() {
        assert!(std::time::Instant::now() < deadline, "queue never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.scheduler().stats().selections, 0);

    // And the server is entirely unbothered.
    let mut fresh = EdgeClient::connect(addr, "gold", "").unwrap();
    let report = fresh
        .request(request("papers", 4), RequestOptions::default())
        .unwrap();
    assert_eq!(report.outcomes[0].selected.len(), 4);
}

#[cfg(feature = "fault-injection")]
mod fault_injection {
    use super::*;
    use grain::core::fault::{self, FaultAction, Schedule};
    use grain::core::{CancelToken, OnDeadline};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// The fail-point registry is process-global: every test that arms a
    /// site holds this lock for its whole body so no sibling test crosses
    /// an armed site concurrently.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Disarms on drop so a failing assertion cannot leak an armed fault.
    struct Armed(&'static str);
    impl Armed {
        fn arm(site: &'static str, schedule: Schedule, action: FaultAction) -> Self {
            fault::arm(site, schedule, action);
            Self(site)
        }
    }
    impl Drop for Armed {
        fn drop(&mut self) {
            fault::disarm(self.0);
        }
    }

    /// The acceptance criterion of the cancellation layer: a deadline
    /// trip at *any* greedy round boundary degrades (under
    /// [`OnDeadline::Partial`]) to an exact byte-for-byte prefix of the
    /// uncancelled selection, while [`OnDeadline::Fail`] turns the same
    /// trip into the typed deadline error.
    #[test]
    fn deadline_trip_at_any_greedy_round_degrades_to_an_exact_prefix() {
        let _guard = serialize();
        let service = service_with(&[("papers", 71)]);
        let budget = 10;
        let oracle = service.select(&request("papers", budget)).unwrap();
        let full = &oracle.outcome().selected;
        assert_eq!(full.len(), budget);

        let mut shorter_than_full = 0;
        for round in 1..=budget as u64 {
            let armed = Armed::arm("greedy.round", Schedule::Nth(round), FaultAction::Cancel);
            let report = service
                .select_with(
                    &request("papers", budget),
                    &CancelToken::new(),
                    OnDeadline::Partial,
                )
                .expect("Partial policy degrades, not fails");
            assert!(report.is_partial(), "round {round} trip must be partial");
            let prefix = &report.outcome().selected;
            assert!(
                full.starts_with(prefix),
                "round {round}: partial result must be an exact prefix \
                 (got {prefix:?} vs full {full:?})"
            );
            assert!(
                prefix.len() < budget,
                "round {round}: a mid-run trip cannot reach the full budget"
            );
            assert_eq!(
                report.outcome().objective_trace,
                oracle.outcome().objective_trace[..prefix.len()],
                "round {round}: the prefix carries the oracle's trace"
            );
            if prefix.len() < budget - 1 {
                shorter_than_full += 1;
            }
            drop(armed);

            // The same trip under Fail is the typed error instead.
            let armed = Armed::arm("greedy.round", Schedule::Nth(round), FaultAction::Cancel);
            assert_eq!(
                service
                    .select_with(
                        &request("papers", budget),
                        &CancelToken::new(),
                        OnDeadline::Fail,
                    )
                    .unwrap_err(),
                GrainError::DeadlineExceeded {
                    stage: DeadlineStage::MidSelection
                },
                "round {round}: Fail policy surfaces the deadline"
            );
            drop(armed);
        }
        assert!(
            shorter_than_full > 0,
            "early trips must actually shorten the selection"
        );

        // The engine is undamaged: the uncancelled request still answers
        // bit-identically after all those cancelled runs.
        let again = service.select(&request("papers", budget)).unwrap();
        assert_eq!(&again.outcome().selected, full);
    }

    /// Cancellation is also observed between evaluation blocks inside a
    /// round (`cancel_check_every`), not only at round boundaries.
    #[test]
    fn eval_block_checkpoints_observe_cancellation_within_a_round() {
        let _guard = serialize();
        let service = service_with(&[("papers", 79)]);
        let config = GrainConfig {
            cancel_check_every: 8,
            ..GrainConfig::ball_d()
        };
        let req = SelectionRequest::new("papers", config, Budget::Fixed(10));
        let full = service.select(&req).unwrap().outcome().selected.clone();

        let _armed = Armed::arm("greedy.eval.block", Schedule::Nth(2), FaultAction::Cancel);
        let report = service
            .select_with(&req, &CancelToken::new(), OnDeadline::Partial)
            .expect("Partial policy degrades, not fails");
        assert!(report.is_partial());
        let prefix = &report.outcome().selected;
        assert!(prefix.len() < full.len(), "the trip was observed mid-run");
        assert!(full.starts_with(prefix), "still an exact prefix");
    }

    /// An injected panic in one request of a batch resolves that request
    /// as [`GrainError::SelectionPanicked`] and leaves every sibling's
    /// answer bit-identical to the serial oracle — no worker dies, no
    /// latch wedges, no result corrupts.
    #[test]
    fn injected_panic_isolates_to_its_request_and_siblings_stay_bit_identical() {
        let _guard = serialize();
        let service = service_with(&[("cora", 81), ("pubmed", 83)]);
        let requests = vec![request("cora", 6), request("pubmed", 6), request("cora", 9)];
        let oracle: Vec<SelectionReport> = requests
            .iter()
            .map(|r| service.select(r).unwrap())
            .collect();

        // Serial batch workers make "first request crosses first"
        // deterministic: exactly requests[0] panics.
        let _armed = Armed::arm("service.request", Schedule::Nth(1), FaultAction::Panic);
        let results = service.submit_batch_with_workers(&requests, 1);
        assert_eq!(
            results[0].as_ref().unwrap_err(),
            &GrainError::SelectionPanicked {
                graph: "cora".into()
            }
        );
        for (i, (result, want)) in results.iter().zip(&oracle).enumerate().skip(1) {
            let got = result.as_ref().expect("siblings are untouched");
            assert_eq!(
                got.outcome().selected,
                want.outcome().selected,
                "sibling {i} must be bit-identical to the serial oracle"
            );
            assert_eq!(
                got.outcome().objective_trace,
                want.outcome().objective_trace
            );
        }
    }

    /// The same isolation holds through the scheduler: the panicked
    /// request's ticket resolves typed, the `panicked` counter records
    /// it, and the worker keeps serving.
    #[test]
    fn scheduler_workers_survive_injected_panics() {
        let _guard = serialize();
        let service = service_with(&[("cora", 81), ("pubmed", 83)]);
        let oracle = service.select(&request("pubmed", 7)).unwrap();
        let scheduler = Scheduler::new(
            Arc::clone(&service),
            SchedulerConfig {
                workers: 1, // FIFO dispatch: the first submission panics
                start_paused: true,
                ..SchedulerConfig::default()
            },
        );
        let _armed = Armed::arm("service.request", Schedule::Nth(1), FaultAction::Panic);
        let doomed = scheduler.submit(request("cora", 7)).unwrap();
        let fine = scheduler.submit(request("pubmed", 7)).unwrap();
        scheduler.resume();

        assert_eq!(
            doomed.wait().unwrap_err(),
            GrainError::SelectionPanicked {
                graph: "cora".into()
            }
        );
        let report = fine.wait().unwrap();
        assert_eq!(report.outcome().selected, oracle.outcome().selected);
        // The worker survived; it still answers new work.
        let after = scheduler.submit(request("cora", 4)).unwrap();
        assert_eq!(after.wait().unwrap().outcome().selected.len(), 4);
        let stats = scheduler.stats();
        assert_eq!(stats.panicked, 1, "{stats:?}");
    }

    /// A cancellation landing at an artifact-build boundary (cold build)
    /// fails typed under *both* policies — artifacts are never partial —
    /// caches nothing, and the next identical request rebuilds cleanly.
    #[test]
    fn cancel_at_a_cold_build_boundary_fails_typed_and_caches_nothing() {
        let _guard = serialize();
        let fresh = service_with(&[("papers", 91)]);
        let oracle = fresh.select(&request("papers", 6)).unwrap();

        let service = service_with(&[("papers", 91)]);
        for policy in [OnDeadline::Fail, OnDeadline::Partial] {
            let _armed = Armed::arm(
                "engine.build.propagation",
                Schedule::Nth(1),
                FaultAction::Cancel,
            );
            assert_eq!(
                service
                    .select_with(&request("papers", 6), &CancelToken::new(), policy)
                    .unwrap_err(),
                GrainError::DeadlineExceeded {
                    stage: DeadlineStage::MidSelection
                },
                "artifact builds are never partial ({policy:?})"
            );
        }
        // Disarmed: the cold build now completes and answers exactly as a
        // fresh service would — nothing half-built was cached.
        let report = service.select(&request("papers", 6)).unwrap();
        assert_eq!(report.outcome().selected, oracle.outcome().selected);
    }

    /// A scheduled waiter that opted into partial results receives the
    /// anytime prefix when a fault trips the deadline mid-run, while a
    /// Fail-policy waiter of the same coalesced slot receives the typed
    /// error; the `partial` counter records the degraded delivery.
    #[test]
    fn partial_and_fail_waiters_of_one_slot_each_get_their_contract() {
        let _guard = serialize();
        let service = service_with(&[("papers", 97)]);
        let budget = 10;
        let full = service
            .select(&request("papers", budget))
            .unwrap()
            .outcome()
            .selected
            .clone();

        let scheduler = Scheduler::new(
            Arc::clone(&service),
            SchedulerConfig {
                workers: 1,
                start_paused: true,
                ..SchedulerConfig::default()
            },
        );
        // Both waiters need deadlines (a deadline-free waiter keeps the
        // run uncancellable); the injected Cancel trips the token early.
        let deadline = Duration::from_secs(600);
        let partial_waiter = scheduler
            .submit(
                ScheduledRequest::new(request("papers", budget))
                    .with_deadline_in(deadline)
                    .with_on_deadline(OnDeadline::Partial),
            )
            .unwrap();
        let fail_waiter = scheduler
            .submit(ScheduledRequest::new(request("papers", budget)).with_deadline_in(deadline))
            .unwrap();
        assert_eq!(scheduler.queue_depth(), 1, "the two waiters coalesced");

        let _armed = Armed::arm("greedy.round", Schedule::Nth(3), FaultAction::Cancel);
        scheduler.resume();

        let report = partial_waiter.wait().unwrap();
        assert!(report.is_partial());
        let prefix = &report.outcome().selected;
        assert!(full.starts_with(prefix) && prefix.len() < full.len());
        assert_eq!(
            fail_waiter.wait().unwrap_err(),
            GrainError::DeadlineExceeded {
                stage: DeadlineStage::MidSelection
            }
        );
        let stats = scheduler.stats();
        assert_eq!(stats.partial, 1, "{stats:?}");
        assert_eq!(stats.delivered, 2, "{stats:?}");
    }

    // ----- serving-edge fault sites -------------------------------------

    use grain::core::edge::proto::WireReport;
    use grain::core::edge::RequestOptions;

    fn edge_server(service: &Arc<GrainService>) -> EdgeServer {
        EdgeServer::bind(
            "127.0.0.1:0",
            Arc::clone(service),
            EdgeConfig {
                max_connections: 4,
                tenants: vec![TenantSpec::open("gold", 1)],
                ..EdgeConfig::default()
            },
        )
        .unwrap()
    }

    /// A panic injected mid-write — after the selection completed,
    /// while its response frame is going out — severs that connection
    /// only. The server survives, and a fresh connection gets the
    /// bit-identical answer (nothing server-side was poisoned).
    #[test]
    fn a_mid_write_fault_severs_one_connection_never_the_server() {
        let _guard = serialize();
        let service = service_with(&[("papers", 71)]);
        let oracle = service.select(&request("papers", 5)).unwrap();
        let server = edge_server(&service);

        let mut client = EdgeClient::connect(server.local_addr(), "gold", "").unwrap();
        // The hello-ack write is already behind us: the next `edge.write`
        // crossing is this request's response frame.
        let armed = Armed::arm("edge.write", Schedule::Nth(1), FaultAction::Panic);
        let severed = client.request(request("papers", 5), RequestOptions::default());
        assert!(
            severed.is_err(),
            "a mid-write fault must sever the connection, got {severed:?}"
        );
        drop(armed);

        let mut fresh = EdgeClient::connect(server.local_addr(), "gold", "").unwrap();
        let report = fresh
            .request(request("papers", 5), RequestOptions::default())
            .unwrap();
        assert_eq!(
            report.outcomes,
            WireReport::from_report(0, &oracle).outcomes,
            "the retried answer must be bit-identical to the serial oracle"
        );
        assert!(server.stats().connections_accepted >= 2);
    }

    /// `edge.disconnect` models the client vanishing in the instant
    /// between the selection resolving and its response hitting the
    /// wire: the connection tears down cleanly and the result is simply
    /// dropped — reproducible bit-exactly by the next asker.
    #[test]
    fn a_disconnect_before_the_response_drops_only_that_delivery() {
        let _guard = serialize();
        let service = service_with(&[("papers", 71)]);
        let oracle = service.select(&request("papers", 6)).unwrap();
        let server = edge_server(&service);

        let mut client = EdgeClient::connect(server.local_addr(), "gold", "").unwrap();
        let armed = Armed::arm("edge.disconnect", Schedule::Nth(1), FaultAction::Panic);
        let severed = client.request(request("papers", 6), RequestOptions::default());
        assert!(
            severed.is_err(),
            "the response must never arrive, got {severed:?}"
        );
        drop(armed);

        let mut fresh = EdgeClient::connect(server.local_addr(), "gold", "").unwrap();
        let report = fresh
            .request(request("papers", 6), RequestOptions::default())
            .unwrap();
        assert_eq!(
            report.outcomes,
            WireReport::from_report(0, &oracle).outcomes
        );
    }

    /// Panics at the remaining edge sites — as the connection starts
    /// (`edge.accept`) and at the reader's frame loop (`edge.read`) —
    /// each kill exactly one connection and nothing else.
    #[test]
    fn accept_and_read_faults_kill_one_connection_each() {
        let _guard = serialize();
        let service = service_with(&[("papers", 71)]);
        service.select(&request("papers", 4)).unwrap(); // warm
        let server = edge_server(&service);

        for site in ["edge.accept", "edge.read"] {
            let armed = Armed::arm(site, Schedule::Nth(1), FaultAction::Panic);
            // The faulted connection dies during or right after the
            // handshake; both shapes are acceptable, panics are not.
            if let Ok(mut client) = EdgeClient::connect(server.local_addr(), "gold", "") {
                let severed = client.request(request("papers", 4), RequestOptions::default());
                assert!(severed.is_err(), "{site}: expected a severed connection");
            }
            drop(armed);

            let mut fresh = EdgeClient::connect(server.local_addr(), "gold", "").unwrap();
            let report = fresh
                .request(request("papers", 4), RequestOptions::default())
                .unwrap();
            assert_eq!(report.outcomes[0].selected.len(), 4, "{site}");
        }
    }
}

//! Property-based verification of the paper's structural theorems
//! (3.3, 3.5, 3.7): monotonicity and submodularity of `|sigma(S)|`,
//! `D_ball`, `D_NN` and the combined DIM objective `F`, plus CELF/greedy
//! equivalence — all on randomized graphs via proptest.

use grain::core::diversity::{BallDiversity, DiversityFunction, NnDiversity};
use grain::core::greedy::{lazy_greedy, plain_greedy};
use grain::core::objective::MarginalObjective;
use grain::core::DimObjective;
use grain::influence::theory::check_all_chains;
use grain::influence::{ActivationIndex, InfluenceRows};
use grain::prelude::*;
use grain_graph::generators;
use proptest::prelude::*;

/// Random small instance: ER graph + random features.
fn instance(nodes: usize, edges: usize, seed: u64) -> (Graph, DenseMatrix, ActivationIndex) {
    let g = generators::erdos_renyi_gnm(nodes, edges, seed);
    let t = grain_graph::transition_matrix(&g, TransitionKind::RandomWalk, true);
    let rows = InfluenceRows::compute(&t, 2, 0.0);
    let idx = ActivationIndex::build_with_rule(&rows, ThetaRule::RelativeToRowMax(0.3));
    let data: Vec<f32> = (0..nodes * 4)
        .map(|i| {
            (((i as u64).wrapping_mul(seed ^ 0x9e3779b97f4a7c15) >> 33) % 97) as f32 * 0.05 + 0.01
        })
        .collect();
    let x = DenseMatrix::from_vec(nodes, 4, data);
    (g, x, idx)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Theorem 3.3: |sigma(S)| is nondecreasing and submodular.
    #[test]
    fn sigma_size_monotone_submodular(seed in 0u64..500, nodes in 12usize..28, edge_factor in 1usize..4) {
        let (_, _, idx) = instance(nodes, nodes * edge_factor, seed);
        let universe: Vec<u32> = (0..7u32).collect();
        let mut f = |s: &[u32]| idx.sigma_size(s) as f64;
        prop_assert!(check_all_chains(&mut f, &universe).is_ok());
    }

    /// Theorem 3.7: D_ball is nondecreasing and submodular (as a function
    /// of the SEED set through sigma, exactly as used in the objective).
    #[test]
    fn ball_diversity_monotone_submodular(seed in 0u64..500, nodes in 12usize..24) {
        let (_, x, idx) = instance(nodes, nodes * 2, seed);
        let emb = grain_linalg::distance::normalized_embedding(&x);
        let universe: Vec<u32> = (0..6u32).collect();
        let mut f = |s: &[u32]| {
            let mut div = BallDiversity::new(&emb, 0.1);
            div.commit(&idx.sigma(s));
            div.value()
        };
        prop_assert!(check_all_chains(&mut f, &universe).is_ok());
    }

    /// Theorem 3.5: D_NN is nondecreasing and submodular.
    #[test]
    fn nn_diversity_monotone_submodular(seed in 0u64..500, nodes in 12usize..20) {
        let (_, x, idx) = instance(nodes, nodes * 2, seed);
        let emb = grain_linalg::distance::normalized_embedding(&x);
        let universe: Vec<u32> = (0..5u32).collect();
        let mut f = |s: &[u32]| {
            let mut div = NnDiversity::new(emb.clone(), 1024);
            div.commit(&idx.sigma(s));
            div.value()
        };
        prop_assert!(check_all_chains(&mut f, &universe).is_ok());
    }

    /// Eq. 11: the combined DIM objective inherits both properties, so the
    /// greedy guarantee applies.
    #[test]
    fn dim_objective_monotone_submodular(seed in 0u64..300, nodes in 12usize..20) {
        let (_, x, idx) = instance(nodes, nodes * 2, seed);
        let emb = grain_linalg::distance::normalized_embedding(&x);
        let universe: Vec<u32> = (0..5u32).collect();
        let mut f = |s: &[u32]| {
            let div = BallDiversity::new(&emb, 0.1);
            let mut obj = DimObjective::new(&idx, div, 1.0);
            for &u in s {
                obj.add(u);
            }
            obj.value()
        };
        prop_assert!(check_all_chains(&mut f, &universe).is_ok());
    }

    /// CELF selects exactly the plain-greedy set on random instances.
    #[test]
    fn celf_equals_plain_greedy(seed in 0u64..500, nodes in 15usize..40, budget in 2usize..8) {
        let (_, x, idx) = instance(nodes, nodes * 2, seed);
        let emb = grain_linalg::distance::normalized_embedding(&x);
        let candidates: Vec<u32> = (0..nodes as u32).collect();
        let mut a = DimObjective::new(&idx, BallDiversity::new(&emb, 0.1), 1.0);
        let ta = plain_greedy(&mut a, &candidates, budget);
        let mut b = DimObjective::new(&idx, BallDiversity::new(&emb, 0.1), 1.0);
        let tb = lazy_greedy(&mut b, &candidates, budget);
        prop_assert_eq!(&ta.selected, &tb.selected);
        prop_assert!(tb.evaluations <= ta.evaluations);
    }

    /// The greedy objective trace is nondecreasing with diminishing gains.
    #[test]
    fn greedy_trace_concave(seed in 0u64..300, nodes in 15usize..30) {
        let (_, x, idx) = instance(nodes, nodes * 2, seed);
        let emb = grain_linalg::distance::normalized_embedding(&x);
        let candidates: Vec<u32> = (0..nodes as u32).collect();
        let mut obj = DimObjective::new(&idx, BallDiversity::new(&emb, 0.1), 1.0);
        let trace = plain_greedy(&mut obj, &candidates, 6);
        let mut last_value = 0.0;
        let mut last_gain = f64::INFINITY;
        for &v in &trace.objective_trace {
            let gain = v - last_value;
            prop_assert!(gain >= -1e-9, "objective decreased");
            prop_assert!(gain <= last_gain + 1e-9, "greedy gains increased");
            last_gain = gain;
            last_value = v;
        }
    }

    /// Influence rows stay normalized probability vectors for any graph.
    #[test]
    fn influence_rows_are_distributions(seed in 0u64..500, nodes in 10usize..40, edge_factor in 1usize..5) {
        let g = generators::erdos_renyi_gnm(nodes, nodes * edge_factor, seed);
        let t = grain_graph::transition_matrix(&g, TransitionKind::RandomWalk, true);
        let rows = InfluenceRows::compute(&t, 2, 0.0);
        for v in 0..nodes {
            let sum: f32 = rows.row_values(v).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {} sums to {}", v, sum);
        }
    }
}

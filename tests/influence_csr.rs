//! The flat-CSR influence artifact against an independent nested oracle.
//!
//! `InfluenceRows` stores its rows in one contiguous CSR
//! (`offsets`/`cols`/`vals`), scatter-gathered by per-worker chunks and
//! stitched in rank order. This suite rebuilds the retired
//! `Vec<Vec<(u32, f32)>>` algorithm from scratch — same ε-pruned
//! truncated-walk recurrence, serial, one allocation per row — and
//! demands bit-identical agreement across kernels, pruning thresholds,
//! truncation settings, and worker counts, on randomized graphs.

use grain::influence::walk::kernel_power_weights;
use grain::influence::InfluenceRows;
use grain::prelude::*;
use grain_graph::{generators, transition_matrix, CsrMatrix};
use proptest::prelude::*;

/// The retired nested builder: normalized rows of `Σ_l weights[l]·T^l`
/// with ε-pruning between steps and optional per-row `top_k` truncation,
/// computed serially with the exact float operations of the original.
fn nested_reference(
    t: &CsrMatrix,
    weights: &[f32],
    eps: f32,
    top_k: usize,
) -> Vec<Vec<(u32, f32)>> {
    let n = t.rows();
    let mut rows = Vec::with_capacity(n);
    let mut step = vec![0.0f32; n];
    let mut acc = vec![0.0f32; n];
    for v in 0..n {
        let mut frontier = vec![(v as u32, 1.0f32)];
        let mut acc_touched: Vec<u32> = Vec::new();
        if weights[0] != 0.0 {
            acc[v] = weights[0];
            acc_touched.push(v as u32);
        }
        for &wl in weights.iter().skip(1) {
            let mut step_touched: Vec<u32> = Vec::new();
            for &(node, mass) in &frontier {
                let (idx, vals) = t.row(node as usize);
                for (&c, &w) in idx.iter().zip(vals) {
                    let add = mass * w;
                    if add == 0.0 {
                        continue;
                    }
                    if step[c as usize] == 0.0 {
                        step_touched.push(c);
                    }
                    step[c as usize] += add;
                }
            }
            frontier.clear();
            for &c in &step_touched {
                let val = step[c as usize];
                step[c as usize] = 0.0;
                if val >= eps {
                    frontier.push((c, val));
                    if wl != 0.0 {
                        if acc[c as usize] == 0.0 {
                            acc_touched.push(c);
                        }
                        acc[c as usize] += wl * val;
                    }
                }
            }
        }
        let mut row: Vec<(u32, f32)> = Vec::new();
        for &c in &acc_touched {
            let val = acc[c as usize];
            acc[c as usize] = 0.0;
            if val > 0.0 {
                row.push((c, val));
            }
        }
        if top_k > 0 && row.len() > top_k {
            row.sort_unstable_by(|&(ca, wa), &(cb, wb)| wb.total_cmp(&wa).then(ca.cmp(&cb)));
            row.truncate(top_k);
        }
        row.sort_unstable_by_key(|&(c, _)| c);
        let total: f32 = row.iter().map(|&(_, w)| w).sum();
        if total > 0.0 {
            for e in &mut row {
                e.1 /= total;
            }
        }
        rows.push(row);
    }
    rows
}

fn assert_bit_identical(csr: &InfluenceRows, nested: &[Vec<(u32, f32)>], context: &str) {
    assert_eq!(csr.num_nodes(), nested.len(), "{context}: node count");
    for (v, want) in nested.iter().enumerate() {
        let got: Vec<(u32, f32)> = csr.row_entries(v).collect();
        assert_eq!(got.len(), want.len(), "{context}: row {v} nnz");
        for (&(gc, gw), &(wc, ww)) in got.iter().zip(want) {
            assert_eq!(gc, wc, "{context}: row {v} column");
            assert_eq!(
                gw.to_bits(),
                ww.to_bits(),
                "{context}: row {v} col {gc} weight {gw} vs {ww}"
            );
        }
    }
}

fn kernels() -> Vec<Kernel> {
    vec![
        Kernel::SymNorm { k: 2 },
        Kernel::RandomWalk { k: 3 },
        Kernel::Ppr { k: 2, alpha: 0.15 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The CSR build is bit-identical to the nested oracle for every
    /// kernel, pruning threshold, and worker count.
    #[test]
    fn csr_build_is_bit_identical_to_nested_oracle(
        seed in 0u64..300,
        nodes in 16usize..48,
        edge_factor in 2usize..5,
    ) {
        let g = generators::erdos_renyi_gnm(nodes, nodes * edge_factor, seed);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        for kernel in kernels() {
            let weights = kernel_power_weights(kernel);
            for eps in [0.0f32, 1e-3] {
                let oracle = nested_reference(&t, &weights, eps, 0);
                for threads in [1usize, 2, 7] {
                    let csr = InfluenceRows::compute_weighted_par(&t, &weights, eps, threads);
                    assert_bit_identical(
                        &csr,
                        &oracle,
                        &format!("{kernel:?} eps={eps} threads={threads}"),
                    );
                }
            }
        }
    }

    /// Truncated rows agree with the oracle's truncation at every worker
    /// count, and truncation bounds each row's population.
    #[test]
    fn truncated_rows_match_oracle_and_bound_nnz(
        seed in 0u64..300,
        nodes in 16usize..40,
        top_k in 1usize..6,
    ) {
        let g = generators::erdos_renyi_gnm(nodes, nodes * 4, seed);
        let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
        let weights = kernel_power_weights(Kernel::SymNorm { k: 2 });
        let oracle = nested_reference(&t, &weights, 0.0, top_k);
        for threads in [1usize, 3, 8] {
            let csr = InfluenceRows::compute_weighted_topk_ctl(
                &t, &weights, 0.0, top_k, threads, &|| false,
            )
            .expect("never-stopping probe");
            assert_bit_identical(&csr, &oracle, &format!("top_k={top_k} threads={threads}"));
            for v in 0..nodes {
                prop_assert!(csr.row_nnz(v) <= top_k);
            }
        }
    }
}

/// The CSR layout is strictly smaller than what the retired nested layout
/// would occupy, at every configuration the property tests sweep.
#[test]
fn csr_resident_bytes_undercut_nested_layout() {
    let g = generators::erdos_renyi_gnm(200, 900, 5);
    let t = transition_matrix(&g, TransitionKind::RandomWalk, true);
    for top_k in [0usize, 8] {
        let rows = InfluenceRows::compute_weighted_topk_ctl(
            &t,
            &kernel_power_weights(Kernel::RandomWalk { k: 2 }),
            0.0,
            top_k,
            0,
            &|| false,
        )
        .unwrap();
        assert!(
            rows.resident_bytes() < rows.nested_layout_bytes(),
            "top_k={top_k}: {} !< {}",
            rows.resident_bytes(),
            rows.nested_layout_bytes()
        );
    }
}

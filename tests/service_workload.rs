//! The `GrainService` acceptance workload: 2 graphs × 2 configs × budget
//! sweeps, Grain plus two baselines, through one service with a pool
//! small enough to evict — and every warm answer bit-identical to its
//! cold one-shot.

use grain::prelude::*;
use grain::select::featprop::FeatPropSelector;
use grain::select::kcenter::KCenterGreedySelector;
use std::sync::Arc;

const BUDGETS: [usize; 3] = [4, 8, 12];

fn configs() -> [GrainConfig; 2] {
    [
        GrainConfig::ball_d(),
        GrainConfig {
            theta: ThetaRule::RelativeToRowMax(0.5),
            ..GrainConfig::ball_d()
        },
    ]
}

fn datasets() -> [(String, Dataset); 2] {
    [
        (
            "cora".to_string(),
            grain::data::synthetic::papers_like(600, 41),
        ),
        (
            "pubmed".to_string(),
            grain::data::synthetic::papers_like(500, 43),
        ),
    ]
}

#[test]
fn mixed_workload_evicts_and_stays_bit_identical() {
    let corpora = datasets();
    // 2 graphs × 2 artifact configs = 4 pool keys; capacity 3 forces at
    // least one eviction over the workload.
    let service = GrainService::with_capacity(3);
    for (id, ds) in &corpora {
        service
            .register_graph(id.clone(), ds.graph.clone(), ds.features.clone())
            .unwrap();
    }

    let requests: Vec<(SelectionRequest, &Dataset)> = corpora
        .iter()
        .flat_map(|(id, ds)| {
            configs().into_iter().map(move |cfg| {
                (
                    SelectionRequest::new(id.clone(), cfg, Budget::Sweep(BUDGETS.to_vec()))
                        .with_candidates(ds.split.train.clone()),
                    ds,
                )
            })
        })
        .collect();

    // Round 1: cold. Also record the reference answer of a pool-free
    // one-shot engine per (request, budget).
    let mut round1 = Vec::new();
    for (request, ds) in &requests {
        let report = service.select(request).unwrap();
        assert_eq!(report.outcomes.len(), BUDGETS.len());
        for (outcome, &budget) in report.outcomes.iter().zip(&BUDGETS) {
            let fresh = SelectionEngine::new(request.config, &ds.graph, &ds.features)
                .unwrap()
                .select(&ds.split.train, budget);
            assert_eq!(
                outcome.selected, fresh.selected,
                "{} budget {budget}: service answer must match a cold engine",
                request.graph
            );
            assert_eq!(outcome.objective_trace, fresh.objective_trace);
        }
        round1.push(report);
    }

    // Round 2: replay the whole workload, most-recent first (cycling 4
    // keys through a capacity-3 pool in FIFO order would be the LRU worst
    // case and never hit). Pool hits or rebuilds — every answer must be
    // bit-identical to round 1.
    for ((request, _), first) in requests.iter().zip(&round1).rev() {
        let report = service.select(request).unwrap();
        for (warm, cold) in report.outcomes.iter().zip(&first.outcomes) {
            assert_eq!(warm.selected, cold.selected);
            assert_eq!(warm.sigma, cold.sigma);
            assert_eq!(warm.objective_trace, cold.objective_trace);
            assert_eq!(warm.evaluations, cold.evaluations);
        }
    }

    let stats = service.pool_stats();
    assert!(
        stats.evictions >= 1,
        "4 keys through a capacity-3 pool must evict, got {stats:?}"
    );
    assert!(
        stats.hits >= 1,
        "the replay must hit at least one resident engine, got {stats:?}"
    );
    assert_eq!(stats.lookups(), 2 * requests.len());
}

#[test]
fn baselines_in_the_workload_read_the_pooled_artifact_store() {
    let corpora = datasets();
    let service = GrainService::with_capacity(3);
    for (id, ds) in &corpora {
        service
            .register_graph(id.clone(), ds.graph.clone(), ds.features.clone())
            .unwrap();
    }
    let base = GrainConfig::ball_d();

    for (id, ds) in &corpora {
        // Check an engine out of the pool for this corpus, lock it for
        // the whole lineup, and run the baselines against it.
        let (checkout, _) = service.engine(id, &base).unwrap();
        let mut engine = checkout.lock();
        let pooled_smoothed = engine.propagated();
        let ctx = SelectionContext::from_engine(ds, 11, &mut engine);
        assert!(
            Arc::ptr_eq(&ctx.smoothed_arc(), &pooled_smoothed),
            "baseline smoothing must be the pooled engine's X^(k) allocation"
        );

        let mut featprop = FeatPropSelector::new(5);
        let mut kcg = KCenterGreedySelector::new(5);
        let fp_service = featprop.select_sweep_with(&ctx, &mut engine, &BUDGETS);
        let kcg_service = kcg.select_sweep_with(&ctx, &mut engine, &BUDGETS);
        drop(engine);
        drop(checkout);

        // Grain through the service, same engine, same store.
        let grain = service
            .select(
                &SelectionRequest::new(id.clone(), base, Budget::Sweep(BUDGETS.to_vec()))
                    .with_candidates(ds.split.train.clone()),
            )
            .unwrap();

        // Cold reference: a standalone context that built its own engine.
        let cold_ctx = SelectionContext::new(ds, 11);
        let fp_cold = FeatPropSelector::new(5).select_sweep(&cold_ctx, &BUDGETS);
        let kcg_cold = KCenterGreedySelector::new(5).select_sweep(&cold_ctx, &BUDGETS);
        assert_eq!(
            fp_service, fp_cold,
            "{id}: featprop must be bit-identical on pooled vs cold store"
        );
        assert_eq!(
            kcg_service, kcg_cold,
            "{id}: kcg must be bit-identical on pooled vs cold store"
        );

        // All three methods selected within the same candidate pool.
        for sweep in [&fp_service, &kcg_service] {
            for (selection, &budget) in sweep.iter().zip(&BUDGETS) {
                grain::select::traits::validate_selection(selection, &ds.split.train, budget)
                    .unwrap();
            }
        }
        for (outcome, &budget) in grain.outcomes.iter().zip(&BUDGETS) {
            grain::select::traits::validate_selection(&outcome.selected, &ds.split.train, budget)
                .unwrap();
        }
    }
}

//! Selection-quality assertions: the paper's core qualitative claims on a
//! fixed seed battery (synthetic data, so we test orderings, not absolute
//! numbers).

use grain::prelude::*;
use grain_linalg::stats;

/// One-shot selection through a fresh engine.
fn one_shot(config: GrainConfig, ds: &Dataset, budget: usize) -> SelectionOutcome {
    SelectionEngine::new(config, &ds.graph, &ds.features)
        .unwrap()
        .select(&ds.split.train, budget)
}

/// Trains an SGC head on `selection` and returns test accuracy (SGC keeps
/// this battery fast while still exercising graph structure).
fn evaluate(ds: &Dataset, selection: &[u32], seed: u64) -> f64 {
    let mut model = ModelKind::Sgc { k: 2 }.build(ds, seed);
    let cfg = TrainConfig {
        epochs: 60,
        patience: None,
        seed,
        ..Default::default()
    };
    model.train(&ds.labels, selection, &ds.split.val, &cfg);
    grain::gnn::metrics::accuracy(&model.predict(), &ds.labels, &ds.split.test)
}

#[test]
fn grain_beats_random_selection_on_average() {
    // The headline claim, averaged over 3 corpora seeds.
    let mut grain_accs = Vec::new();
    let mut random_accs = Vec::new();
    for seed in 0..3u64 {
        let ds = grain::data::synthetic::papers_like(1200, 100 + seed);
        let budget = ds.budget(2);
        let outcome = one_shot(GrainConfig::ball_d(), &ds, budget);
        grain_accs.push(evaluate(&ds, &outcome.selected, seed));
        let ctx = SelectionContext::new(&ds, seed);
        let mut random = grain::select::random::RandomSelector::new(seed);
        let picked = random.select(&ctx, budget);
        random_accs.push(evaluate(&ds, &picked, seed));
    }
    let g = stats::mean(&grain_accs);
    let r = stats::mean(&random_accs);
    assert!(
        g > r,
        "grain mean accuracy {g:.3} should beat random {r:.3} (grain {grain_accs:?}, random {random_accs:?})"
    );
}

#[test]
fn grain_activates_more_nodes_than_any_baseline_selection() {
    let ds = grain::data::synthetic::papers_like(1500, 42);
    let budget = ds.budget(2);
    let config = GrainConfig {
        variant: GrainVariant::NoDiversity, // pure influence maximization
        ..GrainConfig::ball_d()
    };
    let mut engine = SelectionEngine::new(config, &ds.graph, &ds.features).unwrap();
    let outcome = engine.select(&ds.split.train, budget);
    let index = engine.activation_index().clone();
    let ctx = SelectionContext::new(&ds, 1);
    for (name, mut baseline) in [
        (
            "random",
            Box::new(grain::select::random::RandomSelector::new(1)) as Box<dyn NodeSelector>,
        ),
        (
            "degree",
            Box::new(grain::select::degree::DegreeSelector::new()),
        ),
        (
            "kcg",
            Box::new(grain::select::kcenter::KCenterGreedySelector::new(1)),
        ),
    ] {
        let picked = baseline.select(&ctx, budget);
        let sigma = index.sigma_size(&picked);
        assert!(
            outcome.sigma.len() >= sigma,
            "{name} covers {sigma} > grain {}",
            outcome.sigma.len()
        );
    }
}

#[test]
fn diversity_term_spreads_selections_across_classes() {
    let ds = grain::data::synthetic::papers_like(1600, 7);
    let budget = ds.num_classes; // one pick per class is ideal
    let full = one_shot(GrainConfig::ball_d(), &ds, budget);
    let classes: std::collections::HashSet<u32> = full
        .selected
        .iter()
        .map(|&v| ds.labels[v as usize])
        .collect();
    // With the diversity term, a C-node budget should cover well over half
    // the classes on a separable corpus.
    assert!(
        classes.len() * 2 > ds.num_classes,
        "only {} of {} classes covered",
        classes.len(),
        ds.num_classes
    );
}

#[test]
fn celf_evaluations_beat_plain_greedy_substantially() {
    let ds = grain::data::synthetic::papers_like(2000, 8);
    let budget = ds.budget(2);
    let plain = one_shot(
        GrainConfig {
            algorithm: GreedyAlgorithm::Plain,
            ..GrainConfig::ball_d()
        },
        &ds,
        budget,
    );
    let lazy = one_shot(
        GrainConfig {
            algorithm: GreedyAlgorithm::Lazy,
            ..GrainConfig::ball_d()
        },
        &ds,
        budget,
    );
    assert_eq!(
        plain.selected, lazy.selected,
        "CELF must not change the result"
    );
    assert!(
        (lazy.evaluations as f64) < 0.5 * plain.evaluations as f64,
        "CELF used {} evaluations vs plain {}",
        lazy.evaluations,
        plain.evaluations
    );
}

#[test]
fn pruning_trades_little_quality_for_speed() {
    let ds = grain::data::synthetic::papers_like(1500, 9);
    let budget = ds.budget(2);
    let full = one_shot(GrainConfig::ball_d(), &ds, budget);
    let pruned_cfg = GrainConfig {
        prune: Some(PruneStrategy::WalkMass { keep_fraction: 0.2 }),
        ..GrainConfig::ball_d()
    };
    let pruned = one_shot(pruned_cfg, &ds, budget);
    // The pruned run still reaches at least 80% of the full objective.
    let f_full = *full.objective_trace.last().unwrap();
    let f_pruned = *pruned.objective_trace.last().unwrap();
    assert!(
        f_pruned >= 0.8 * f_full,
        "pruned objective {f_pruned:.3} fell below 80% of full {f_full:.3}"
    );
}

#[test]
fn oracle_free_methods_never_touch_labels() {
    // Corrupting labels must not change Grain/Degree/KCG selections.
    let mut ds = grain::data::synthetic::papers_like(800, 10);
    let budget = 12;
    let grain_before = one_shot(GrainConfig::ball_d(), &ds, budget);
    for l in ds.labels.iter_mut() {
        *l = 0;
    }
    let grain_after = one_shot(GrainConfig::ball_d(), &ds, budget);
    assert_eq!(grain_before.selected, grain_after.selected);
}

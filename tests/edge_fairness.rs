//! The fairness and admission invariants of the serving edge, proven
//! deterministically: [`FairShare`] and [`TokenBucket`] are pure state
//! machines, so every test here drives them with synthetic service
//! sequences and an injectable clock — no sockets, no sleeps, no wall
//! time, bit-reproducible on every run.
//!
//! The invariants under test (each row cross-referenced from
//! `docs/ARCHITECTURE.md`):
//!
//! * **weighted shares** — over any saturated interval, completed work
//!   divides in exact weight proportion;
//! * **starvation-freedom** — a weight-1 tenant is served again within
//!   `Σ weights` services of its last service, no matter how heavy the
//!   competition;
//! * **no banked credit** — an idle tenant re-enters at virtual now,
//!   with neither catch-up burst nor penalty;
//! * **metered admission** — a token bucket never admits more than
//!   `burst + rate × elapsed`, refusals are never charged, and a
//!   hostile clock (out-of-order instants) neither panics nor mints
//!   tokens.

use grain::core::scheduler::FairShare;
use grain::core::TokenBucket;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Serves `n` rounds from always-backlogged `tenants`, returning the
/// per-tenant service counts.
fn saturate(fair: &mut FairShare, tenants: &[&str], n: usize) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for _ in 0..n {
        let winner = fair.pick(tenants.iter().copied()).unwrap();
        fair.charge(winner, 1);
        *counts.entry(winner.to_string()).or_default() += 1;
    }
    counts
}

/// The headline invariant, exactly: 10:1 weights complete 10:1 work
/// under saturation — 2000 against 200 over 2200 services, not one off.
#[test]
fn ten_to_one_weights_complete_ten_to_one_work_under_saturation() {
    let mut fair = FairShare::default();
    fair.set_weight("gold", 10);
    fair.set_weight("bronze", 1);
    let counts = saturate(&mut fair, &["gold", "bronze"], 2200);
    assert_eq!(counts["gold"], 2000);
    assert_eq!(counts["bronze"], 200);
}

/// Starvation-freedom: with heavyweights at 50× and 7×, the weight-1
/// tenant's inter-service gap never exceeds the sum of all weights.
#[test]
fn weight_one_tenant_is_never_starved() {
    let mut fair = FairShare::default();
    let weights = [("heavy", 50u32), ("mid", 7), ("one", 1)];
    for (tenant, weight) in weights {
        fair.set_weight(tenant, weight);
    }
    let bound = weights.iter().map(|&(_, w)| w as usize).sum::<usize>();
    let tenants = ["heavy", "mid", "one"];
    let mut gap = 0usize;
    let mut worst = 0usize;
    for _ in 0..10_000 {
        let winner = fair.pick(tenants).unwrap();
        fair.charge(winner, 1);
        if winner == "one" {
            worst = worst.max(gap);
            gap = 0;
        } else {
            gap += 1;
        }
    }
    assert!(
        worst <= bound,
        "weight-1 tenant waited {worst} services; SFQ bounds the gap by Σweights = {bound}"
    );
}

/// No banked credit: a tenant idle through a long stretch gets exactly
/// one service on return before the backlogged competition is served
/// again — not a catch-up burst proportional to its absence.
#[test]
fn an_idle_tenant_reenters_without_a_catch_up_burst() {
    let mut fair = FairShare::default();
    fair.set_weight("busy", 4);
    fair.set_weight("returning", 4);
    for _ in 0..5_000 {
        fair.charge("busy", 1);
    }
    let mut consecutive = 0usize;
    loop {
        let winner = fair.pick(["busy", "returning"]).unwrap();
        fair.charge(winner, 1);
        if winner == "returning" {
            consecutive += 1;
        } else {
            break;
        }
    }
    assert_eq!(
        consecutive, 1,
        "equal weights: one service on re-entry, then alternation"
    );
}

/// A metered saturated pipeline end to end, virtual clock only: two
/// tenants offer one request per tick, buckets admit, the fair share
/// dispatches one admitted unit per tick. With admission provisioned
/// above dispatch capacity both stay backlogged, and completed work
/// lands in exact 10:1 weight proportion.
#[test]
fn rate_limited_saturation_still_completes_in_weight_proportion() {
    let t0 = Instant::now();
    let tick = Duration::from_millis(1);
    let mut fair = FairShare::default();
    fair.set_weight("gold", 10);
    fair.set_weight("bronze", 1);
    let mut gold_bucket = TokenBucket::new(1500.0, 150.0, t0);
    let mut bronze_bucket = TokenBucket::new(1500.0, 150.0, t0);
    let mut backlog: HashMap<&str, usize> = HashMap::new();
    let mut completed: HashMap<&str, usize> = HashMap::new();
    let mut rate_limited = 0usize;

    for step in 0..22_000u64 {
        let now = t0 + tick * u32::try_from(step).unwrap();
        for (tenant, bucket) in [("gold", &mut gold_bucket), ("bronze", &mut bronze_bucket)] {
            for _ in 0..2 {
                if bucket.try_take(1.0, now) {
                    *backlog.entry(tenant).or_default() += 1;
                } else {
                    rate_limited += 1;
                }
            }
        }
        let backlogged: Vec<&str> = ["gold", "bronze"]
            .into_iter()
            .filter(|t| backlog.get(t).is_some_and(|&n| n > 0))
            .collect();
        if let Some(winner) = fair.pick(backlogged) {
            fair.charge(winner, 1);
            *backlog.get_mut(winner).unwrap() -= 1;
            *completed.entry(winner).or_default() += 1;
        }
    }

    // Per tenant: 2000/s offered, 1500/s admitted, and a fair share of
    // the 1000/s dispatch capacity well below admission — so the meter
    // genuinely refuses AND both tenants stay backlogged, which is the
    // regime where completed work must split by weight.
    assert!(rate_limited > 0, "the meter must actually meter");
    let (gold, bronze) = (completed["gold"], completed["bronze"]);
    let ratio = gold as f64 / bronze as f64;
    assert!(
        (ratio - 10.0).abs() < 0.5,
        "completed {gold}:{bronze} — ratio {ratio:.2} should be 10:1"
    );
    // Work-conserving: one dispatch per tick once backlogs exist.
    assert!(gold + bronze >= 21_000);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// For ANY weight pair, saturated completed work splits within ±2
    /// services of the exact weight proportion.
    #[test]
    fn completed_work_tracks_any_weight_ratio(
        weight_a in 1u32..48,
        weight_b in 1u32..48,
        rounds_per_unit in 10usize..40,
    ) {
        let mut fair = FairShare::default();
        fair.set_weight("a", weight_a);
        fair.set_weight("b", weight_b);
        let total = (weight_a + weight_b) as usize * rounds_per_unit;
        let counts = saturate(&mut fair, &["a", "b"], total);
        let expect_a = total * weight_a as usize / (weight_a + weight_b) as usize;
        let got_a = counts.get("a").copied().unwrap_or(0);
        prop_assert!(
            got_a.abs_diff(expect_a) <= 2,
            "weights {}:{} over {} services: expected ~{} for a, got {}",
            weight_a, weight_b, total, expect_a, got_a
        );
    }

    /// A token bucket driven by an arbitrary simulated tick sequence
    /// never admits more than `burst + rate × elapsed + 1` units, and
    /// its visible level never exceeds the burst cap.
    #[test]
    fn token_bucket_never_exceeds_its_meter(
        rate in 0.5f64..200.0,
        burst in 1.0f64..50.0,
        gaps_ms in proptest::collection::vec(0u64..50, 1usize..200),
    ) {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(rate, burst, t0);
        let mut now = t0;
        let mut admitted = 0usize;
        for gap in &gaps_ms {
            now += Duration::from_millis(*gap);
            prop_assert!(bucket.available(now) <= burst + 1e-9);
            if bucket.try_take(1.0, now) {
                admitted += 1;
            }
        }
        let elapsed = now.duration_since(t0).as_secs_f64();
        let ceiling = burst + rate * elapsed + 1.0;
        prop_assert!(
            (admitted as f64) <= ceiling,
            "admitted {} but the meter allows at most {:.2}",
            admitted, ceiling
        );
    }
}

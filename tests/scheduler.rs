//! The scheduler contract: every scheduled path answers bit-identically
//! to serial `GrainService::select` (the serial oracle), a duplicate
//! storm of identical in-flight requests runs **exactly one** selection,
//! admission control and deadlines fail typed at the documented stages,
//! and abandoned tickets never wedge a worker.
//!
//! Determinism note: the tests that need a guaranteed coalescing window
//! start the scheduler paused (`SchedulerConfig::start_paused`), stage
//! the burst, then resume — no sleeps or timing luck on the happy paths.

use grain::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const STORM: usize = 16;

fn service() -> Arc<GrainService> {
    let dataset = grain::data::synthetic::papers_like(400, 71);
    let service = Arc::new(GrainService::new());
    service
        .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
        .unwrap();
    service
}

fn request(budget: usize) -> SelectionRequest {
    SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(budget))
}

fn paused(service: &Arc<GrainService>) -> Scheduler {
    Scheduler::new(
        Arc::clone(service),
        SchedulerConfig {
            start_paused: true,
            ..SchedulerConfig::default()
        },
    )
}

fn assert_same_answers(got: &SelectionReport, want: &SelectionReport, label: &str) {
    assert_eq!(got.budgets, want.budgets, "{label}");
    assert_eq!(got.outcomes.len(), want.outcomes.len(), "{label}");
    for (g, w) in got.outcomes.iter().zip(&want.outcomes) {
        assert_eq!(g.selected, w.selected, "{label}");
        assert_eq!(g.sigma, w.sigma, "{label}");
        assert_eq!(g.objective_trace, w.objective_trace, "{label}");
        assert_eq!(g.evaluations, w.evaluations, "{label}");
    }
}

#[test]
fn duplicate_storm_runs_exactly_one_selection_and_fans_out_bit_identically() {
    let service = service();
    let oracle = service.select(&request(8)).unwrap();

    let scheduler = paused(&service);
    let tickets: Vec<Ticket> = (0..STORM)
        .map(|_| scheduler.submit(request(8)).unwrap())
        .collect();
    // The whole storm coalesced onto one queued work item.
    assert_eq!(scheduler.queue_depth(), 1);
    scheduler.resume();

    let reports: Vec<SelectionReport> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    let mut joiners = 0;
    for (i, report) in reports.iter().enumerate() {
        assert_same_answers(report, &oracle, &format!("storm waiter {i}"));
        if report.pool_event == PoolEvent::CoalescedSelection {
            joiners += 1;
        }
    }
    assert_eq!(
        joiners,
        STORM - 1,
        "every waiter but the primary is a marked coalesce joiner"
    );

    let stats = scheduler.stats();
    assert_eq!(stats.enqueued, 1, "{stats:?}");
    assert_eq!(stats.coalesced, STORM - 1, "{stats:?}");
    assert_eq!(
        stats.selections, 1,
        "the storm ran exactly one selection: {stats:?}"
    );
    assert_eq!(stats.delivered, STORM, "{stats:?}");
    assert_eq!(stats.saved_selections(), STORM - 1, "{stats:?}");
}

#[test]
fn zero_capacity_queue_rejects_every_submission() {
    let scheduler = Scheduler::new(
        service(),
        SchedulerConfig {
            queue_capacity: 0,
            ..SchedulerConfig::default()
        },
    );
    for _ in 0..3 {
        assert_eq!(
            scheduler.submit(request(5)).unwrap_err(),
            GrainError::QueueFull { capacity: 0 }
        );
    }
    assert_eq!(scheduler.stats().rejected_queue_full, 3);
    assert_eq!(scheduler.queue_depth(), 0);
    assert!(scheduler.is_idle());
}

#[test]
fn queue_full_still_coalesces_and_recovers_after_drain() {
    let service = service();
    let scheduler = Scheduler::new(
        Arc::clone(&service),
        SchedulerConfig {
            queue_capacity: 1,
            start_paused: true,
            ..SchedulerConfig::default()
        },
    );
    let first = scheduler.submit(request(5)).unwrap();
    // New work is refused at capacity...
    assert_eq!(
        scheduler.submit(request(6)).unwrap_err(),
        GrainError::QueueFull { capacity: 1 }
    );
    // ...but an identical submission adds no work and is still admitted.
    let twin = scheduler.submit(request(5)).unwrap();
    assert_eq!(scheduler.queue_depth(), 1);

    scheduler.resume();
    let a = first.wait().unwrap();
    let b = twin.wait().unwrap();
    assert_same_answers(&a, &b, "coalesced twin");
    // The queue drained; the previously rejected request now fits.
    let retry = scheduler.submit(request(6)).unwrap();
    assert_eq!(retry.wait().unwrap().outcome().selected.len(), 6);
}

#[test]
fn expired_deadline_is_rejected_at_submit() {
    let scheduler = Scheduler::new(service(), SchedulerConfig::default());
    let dead =
        ScheduledRequest::new(request(5)).with_deadline(Instant::now() - Duration::from_millis(1));
    assert_eq!(
        scheduler.submit(dead).unwrap_err(),
        GrainError::DeadlineExceeded {
            stage: DeadlineStage::AtSubmit
        }
    );
    let stats = scheduler.stats();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.enqueued, 0, "nothing was queued: {stats:?}");
}

#[test]
fn deadline_expiring_in_queue_is_shed_at_dequeue() {
    let service = service();
    let scheduler = paused(&service);
    // 150ms is far past admission jitter (a shorter deadline could lapse
    // between its computation and submit's check on a preempted CI host,
    // turning the intended in-queue shed into an at-submit rejection).
    let doomed = scheduler
        .submit(ScheduledRequest::new(request(5)).with_deadline_in(Duration::from_millis(150)))
        .unwrap();
    let alive = scheduler.submit(request(7)).unwrap();
    // Paused scheduler: the first deadline expires while queued.
    std::thread::sleep(Duration::from_millis(200));
    scheduler.resume();

    assert_eq!(
        doomed.wait().unwrap_err(),
        GrainError::DeadlineExceeded {
            stage: DeadlineStage::InQueue
        }
    );
    assert_eq!(alive.wait().unwrap().outcome().selected.len(), 7);
    let stats = scheduler.stats();
    assert_eq!(stats.shed_deadline, 1, "{stats:?}");
    assert_eq!(
        stats.selections, 1,
        "no selection ran for the shed request: {stats:?}"
    );
}

#[test]
fn dropped_tickets_never_wedge_the_workers() {
    let service = service();
    let scheduler = paused(&service);
    let mut tickets: Vec<Ticket> = (0..6)
        .map(|_| scheduler.submit(request(9)).unwrap())
        .collect();
    // Abandon half the waiters — including the primary (first) one.
    drop(tickets.remove(0));
    drop(tickets.remove(0));
    drop(tickets.remove(0));
    scheduler.resume();

    let oracle = service.select(&request(9)).unwrap();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let report = ticket.wait().unwrap();
        assert_same_answers(&report, &oracle, &format!("surviving waiter {i}"));
    }
    // The worker is alive and serving after the abandoned fan-outs.
    let after = scheduler.submit(request(4)).unwrap().wait().unwrap();
    assert_eq!(after.outcome().selected.len(), 4);
    let stats = scheduler.stats();
    assert_eq!(stats.abandoned, 3, "{stats:?}");
    assert_eq!(stats.delivered, 4, "{stats:?}");
    assert_eq!(stats.selections, 2, "{stats:?}");
}

#[test]
fn mixed_scheduled_workload_is_bit_identical_to_the_serial_oracle() {
    let cora = grain::data::synthetic::papers_like(360, 81);
    let pubmed = grain::data::synthetic::papers_like(300, 83);
    let base = GrainConfig::ball_d();
    let tight = GrainConfig {
        theta: ThetaRule::RelativeToRowMax(0.5),
        ..base
    };
    let mut gamma = base;
    gamma.gamma = 0.25;

    let make_service = || {
        let service = Arc::new(GrainService::new());
        service
            .register_graph("cora", cora.graph.clone(), cora.features.clone())
            .unwrap();
        service
            .register_graph("pubmed", pubmed.graph.clone(), pubmed.features.clone())
            .unwrap();
        service
    };
    let mut requests = Vec::new();
    for (id, ds) in [("cora", &cora), ("pubmed", &pubmed)] {
        for cfg in [base, tight, gamma] {
            requests.push(
                SelectionRequest::new(id, cfg, Budget::Fixed(6))
                    .with_candidates(ds.split.train.clone()),
            );
            requests.push(
                SelectionRequest::new(id, cfg, Budget::Sweep(vec![3, 9]))
                    .with_candidates(ds.split.train.clone()),
            );
        }
    }

    let oracle_service = make_service();
    let oracle: Vec<SelectionReport> = requests
        .iter()
        .map(|r| oracle_service.select(r).unwrap())
        .collect();

    // Schedule each request twice with varied priorities and generous
    // deadlines: duplicates may coalesce (in-flight) or rerun (already
    // completed) depending on timing — either way every answer must match
    // the oracle bit for bit.
    let scheduler = Scheduler::new(make_service(), SchedulerConfig::default());
    let tickets: Vec<(usize, Ticket)> = requests
        .iter()
        .enumerate()
        .flat_map(|(i, r)| {
            let a = ScheduledRequest::new(r.clone()).with_priority((i % 3) as u8);
            let b = ScheduledRequest::new(r.clone()).with_deadline_in(Duration::from_secs(600));
            [
                (i, scheduler.submit(a).unwrap()),
                (i, scheduler.submit(b).unwrap()),
            ]
        })
        .collect();
    for (i, ticket) in tickets {
        let report = ticket.wait().unwrap();
        assert_same_answers(&report, &oracle[i], &format!("scheduled request {i}"));
    }
    let stats = scheduler.stats();
    assert_eq!(stats.delivered, 2 * requests.len(), "{stats:?}");
    assert_eq!(
        stats.rejected_queue_full + stats.rejected_deadline,
        0,
        "{stats:?}"
    );
}

#[test]
fn pause_holds_dispatch_without_refusing_admission() {
    let scheduler = Scheduler::new(service(), SchedulerConfig::default());
    scheduler.pause();
    assert!(scheduler.is_paused());
    let ticket = scheduler.submit(request(5)).unwrap();
    let ticket = match ticket.try_wait() {
        Err(t) => t,
        Ok(resolved) => panic!("dispatched while paused: {resolved:?}"),
    };
    assert_eq!(scheduler.queue_depth(), 1);
    scheduler.resume();
    assert_eq!(ticket.wait().unwrap().outcome().selected.len(), 5);
}

//! The on-disk artifact store: codec round-trips, corruption handling,
//! and the warm-start contract.
//!
//! The store's contract has three clauses, each driven end-to-end here:
//!
//! 1. **Bit-identity** — an artifact loaded from disk is byte-for-byte
//!    the artifact that was saved, and a service that warm-starts from
//!    the store answers selection requests bit-identically to the cold
//!    build it skipped (across kernels, truncation, and thread counts).
//! 2. **Corruption is typed, never wrong** — any damaged file (truncated,
//!    wrong magic, flipped payload byte, foreign codec version) loads as
//!    `GrainError::StoreCorrupt`, and a service facing such a file falls
//!    through to a cold build instead of crashing or serving bad data.
//! 3. **Epochs are exact** — artifacts persisted for epoch `e` are never
//!    loaded for epoch `e+1`: `apply_update` re-persists patched
//!    artifacts under the new epoch's content address and retires the
//!    old epoch's files.

use grain::core::store::ArtifactKind;
use grain::prelude::*;
use grain_graph::{generators, transition_matrix};
use proptest::prelude::*;
use std::fs;
use std::path::Path;

const FEATURE_DIM: usize = 6;

fn corpus(n: usize, seed: u64) -> (Graph, DenseMatrix) {
    let g = generators::erdos_renyi_gnm(n, 3 * n, seed);
    let mut x = DenseMatrix::zeros(n, FEATURE_DIM);
    for v in 0..n {
        for j in 0..FEATURE_DIM {
            x.set(v, j, ((v * 31 + j * 7 + seed as usize) % 13) as f32 * 0.1);
        }
    }
    (g, x)
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Every `.grain` file under `dir`, sorted for determinism.
fn grain_files(dir: &Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "grain"))
        .collect();
    files.sort();
    files
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 18, ..ProptestConfig::default() })]

    /// Rows and index artifacts round-trip bit-identically for every
    /// kernel family, with and without per-row truncation, at any worker
    /// count used to build them.
    #[test]
    fn rows_and_index_round_trip_across_kernels(
        n in 20usize..90,
        seed in 0u64..500,
        kernel_pick in 0usize..3,
        top_k in 0usize..8,
        threads in 1usize..4,
    ) {
        let kernel = [
            Kernel::SymNorm { k: 2 },
            Kernel::RandomWalk { k: 3 },
            Kernel::Ppr { k: 2, alpha: 0.15 },
        ][kernel_pick];
        let (g, _) = corpus(n, seed);
        let t = transition_matrix(&g, kernel.transition_kind(), true);
        let rows =
            InfluenceRows::for_kernel_topk_ctl(&t, kernel, 1e-4, top_k, threads, &|| false)
                .unwrap();
        let index = ActivationIndex::build_with_rule(&rows, ThetaRule::RelativeToRowMax(0.3));

        let scratch = ScratchDir::new("rt");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        let addr = ContentAddress {
            graph_fingerprint: seed.wrapping_mul(0x9e3779b97f4a7c15),
            epoch: 0,
            artifact_fingerprint: format!("k{kernel_pick}-t{top_k}"),
        };
        store.save_rows(&addr, &rows).unwrap();
        store.save_index(&addr, &index).unwrap();

        let loaded = store.load_rows(&addr).unwrap().unwrap();
        prop_assert_eq!(loaded.offsets(), rows.offsets());
        prop_assert_eq!(loaded.cols(), rows.cols());
        prop_assert_eq!(bits(loaded.vals()), bits(rows.vals()));
        prop_assert_eq!(loaded.k(), rows.k());
        prop_assert_eq!(loaded.num_nodes(), rows.num_nodes());

        let loaded = store.load_index(&addr).unwrap().unwrap();
        prop_assert_eq!(loaded.offsets(), index.offsets());
        prop_assert_eq!(loaded.items(), index.items());
        prop_assert_eq!(loaded.theta().to_bits(), index.theta().to_bits());
        prop_assert_eq!(loaded.k(), index.k());
    }

    /// Dense propagation payloads (arbitrary shapes and values, with a
    /// power ladder) round-trip bit-identically.
    #[test]
    fn propagation_round_trips_bit_identically(
        rows in 1usize..60,
        cols in 1usize..12,
        levels in 0usize..3,
        seed in 0u64..500,
    ) {
        let fill = |salt: u64| {
            let mut m = DenseMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    let h = (r as u64 * 31 + c as u64 * 7 + seed * 13 + salt)
                        .wrapping_mul(0x9e3779b97f4a7c15);
                    m.set(r, c, (h % 1000) as f32 * 1e-3 - 0.5);
                }
            }
            m
        };
        let value = fill(0);
        let ladder: Vec<DenseMatrix> = (0..levels).map(|l| fill(l as u64 + 1)).collect();
        let ladder_refs: Vec<&DenseMatrix> = ladder.iter().collect();

        let scratch = ScratchDir::new("rt-prop");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        let addr = ContentAddress {
            graph_fingerprint: seed + 1,
            epoch: 3,
            artifact_fingerprint: "prop".to_string(),
        };
        store.save_propagation(&addr, &value, &ladder_refs).unwrap();
        let (lv, ll) = store.load_propagation(&addr).unwrap().unwrap();
        prop_assert_eq!(lv.shape(), value.shape());
        prop_assert_eq!(bits(lv.as_slice()), bits(value.as_slice()));
        prop_assert_eq!(ll.len(), ladder.len());
        for (a, b) in ll.iter().zip(&ladder) {
            prop_assert_eq!(a.shape(), b.shape());
            prop_assert_eq!(bits(a.as_slice()), bits(b.as_slice()));
        }
    }
}

#[test]
fn every_corruption_is_a_typed_error_not_a_panic() {
    let (g, _) = corpus(60, 5);
    let kernel = Kernel::SymNorm { k: 2 };
    let t = transition_matrix(&g, kernel.transition_kind(), true);
    let rows = InfluenceRows::for_kernel(&t, kernel, 1e-4);
    let scratch = ScratchDir::new("corrupt");
    let store = ArtifactStore::open(scratch.path()).unwrap();
    let addr = ContentAddress {
        graph_fingerprint: 42,
        epoch: 0,
        artifact_fingerprint: "c".to_string(),
    };
    store.save_rows(&addr, &rows).unwrap();
    let path = store.path_for(&addr, ArtifactKind::InfluenceRows);
    let pristine = fs::read(&path).unwrap();

    let corruptions: Vec<(&str, Vec<u8>)> = vec![
        ("truncated", pristine[..pristine.len() / 2].to_vec()),
        ("bad magic", {
            let mut b = pristine.clone();
            b[0] ^= 0xff;
            b
        }),
        ("flipped payload byte", {
            let mut b = pristine.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x01;
            b
        }),
        ("empty file", Vec::new()),
    ];
    for (what, bytes) in corruptions {
        fs::write(&path, &bytes).unwrap();
        match store.load_rows(&addr) {
            Err(GrainError::StoreCorrupt { .. }) => {}
            other => panic!("{what}: expected StoreCorrupt, got {other:?}"),
        }
    }
    assert!(store.stats().corruptions >= 4);

    // A pristine rewrite loads again.
    fs::write(&path, &pristine).unwrap();
    assert!(store.load_rows(&addr).unwrap().is_some());
}

/// The headline contract: a fresh process pointed at the same store
/// directory answers without rebuilding any persisted artifact, and the
/// answer is bit-identical to the cold run that populated the store.
#[test]
fn restart_warm_starts_from_disk_bit_identically() {
    let scratch = ScratchDir::new("restart");
    let (g, x) = corpus(250, 7);
    let request = SelectionRequest::new("g", GrainConfig::ball_d(), Budget::Fixed(10));

    let cold = {
        let service = GrainService::new()
            .with_artifact_store(scratch.path())
            .unwrap();
        service.register_graph("g", g.clone(), x.clone()).unwrap();
        let report = service.select(&request).unwrap();
        assert!(report.artifact_builds.propagation_builds > 0);
        assert!(report.artifact_builds.influence_builds > 0);
        assert!(report.artifact_builds.index_builds > 0);
        let stats = service.store_stats().unwrap();
        assert_eq!(stats.saves, 3, "one file per persisted stage");
        assert!(stats.bytes_written > 0);
        report
    };
    assert_eq!(grain_files(scratch.path()).len(), 3);

    // "Restart": a brand-new service over the same corpus and directory.
    let service = GrainService::new()
        .with_artifact_store(scratch.path())
        .unwrap();
    service.register_graph("g", g, x).unwrap();
    let warm = service.select(&request).unwrap();
    // The engine object is new (a pool cold miss), but every persisted
    // stage came from disk: zero compute builds.
    assert_eq!(warm.pool_event, PoolEvent::ColdMiss);
    assert_eq!(warm.artifact_builds.propagation_builds, 0);
    assert_eq!(warm.artifact_builds.influence_builds, 0);
    assert_eq!(warm.artifact_builds.index_builds, 0);
    assert_eq!(warm.outcome().selected, cold.outcome().selected);
    assert_eq!(warm.outcome().sigma, cold.outcome().sigma);
    assert_eq!(
        warm.outcome().objective_trace,
        cold.outcome().objective_trace
    );
    let stats = service.store_stats().unwrap();
    assert_eq!(stats.loads, 3);
    assert_eq!(
        stats.saves, 0,
        "freshly loaded artifacts must not be re-persisted"
    );

    // And a second request on the restarted service is an ordinary pool
    // hit that touches neither compute nor disk.
    let hit = service.select(&request).unwrap();
    assert!(hit.fully_warm());
    assert_eq!(service.store_stats().unwrap().loads, 3);
    assert_eq!(hit.outcome().selected, warm.outcome().selected);
}

/// Warm starts hold across kernels, θ rules, truncation, and thread
/// counts — the full artifact-fingerprint space, not just the default
/// config.
#[test]
fn restart_is_bit_identical_across_configs() {
    let base = GrainConfig::ball_d();
    let configs = [
        GrainConfig {
            kernel: Kernel::RandomWalk { k: 3 },
            ..base
        },
        GrainConfig {
            theta: ThetaRule::RelativeToRowMax(0.5),
            influence_row_top_k: 16,
            ..base
        },
        GrainConfig {
            parallelism: 3,
            ..base
        },
    ];
    for (i, cfg) in configs.iter().enumerate() {
        let scratch = ScratchDir::new("restart-cfg");
        let (g, x) = corpus(150, 20 + i as u64);
        let request = SelectionRequest::new("g", *cfg, Budget::Fixed(8));
        let cold = {
            let service = GrainService::new()
                .with_artifact_store(scratch.path())
                .unwrap();
            service.register_graph("g", g.clone(), x.clone()).unwrap();
            service.select(&request).unwrap()
        };
        let service = GrainService::new()
            .with_artifact_store(scratch.path())
            .unwrap();
        service.register_graph("g", g, x).unwrap();
        let warm = service.select(&request).unwrap();
        assert_eq!(
            warm.artifact_builds.propagation_builds, 0,
            "config {i} re-propagated"
        );
        assert_eq!(
            warm.artifact_builds.influence_builds, 0,
            "config {i} re-walked"
        );
        assert_eq!(
            warm.outcome().selected,
            cold.outcome().selected,
            "config {i}"
        );
        assert_eq!(
            warm.outcome().objective_trace,
            cold.outcome().objective_trace,
            "config {i}"
        );
    }
}

/// A service that finds only corrupt files cold-builds, answers
/// correctly, and heals the store by re-persisting what it built.
#[test]
fn corrupt_store_falls_back_to_cold_build_and_heals() {
    let scratch = ScratchDir::new("fallback");
    let (g, x) = corpus(120, 9);
    let request = SelectionRequest::new("g", GrainConfig::ball_d(), Budget::Fixed(6));
    let cold = {
        let service = GrainService::new()
            .with_artifact_store(scratch.path())
            .unwrap();
        service.register_graph("g", g.clone(), x.clone()).unwrap();
        service.select(&request).unwrap()
    };
    // Flip a payload byte in every persisted file.
    for path in grain_files(scratch.path()) {
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
    }
    let service = GrainService::new()
        .with_artifact_store(scratch.path())
        .unwrap();
    service.register_graph("g", g.clone(), x.clone()).unwrap();
    let rebuilt = service.select(&request).unwrap();
    assert!(rebuilt.artifact_builds.propagation_builds > 0);
    assert_eq!(rebuilt.outcome().selected, cold.outcome().selected);
    assert_eq!(
        rebuilt.outcome().objective_trace,
        cold.outcome().objective_trace
    );
    let stats = service.store_stats().unwrap();
    assert!(stats.corruptions >= 3, "stats: {stats:?}");
    assert_eq!(stats.saves, 3, "the rebuilt artifacts heal the store");

    // The healed files answer the next restart from disk again.
    let service = GrainService::new()
        .with_artifact_store(scratch.path())
        .unwrap();
    service.register_graph("g", g, x).unwrap();
    let healed = service.select(&request).unwrap();
    assert_eq!(healed.artifact_builds.propagation_builds, 0);
    assert_eq!(service.store_stats().unwrap().loads, 3);
    assert_eq!(healed.outcome().selected, cold.outcome().selected);
}

/// Epoch exactness: after a delta lands, the store serves the *patched*
/// epoch's artifacts — a persisted pre-delta artifact is never loaded
/// for the post-delta epoch — and the retired epoch's files are removed.
#[test]
fn post_delta_epoch_never_loads_pre_delta_artifacts() {
    let scratch = ScratchDir::new("epoch");
    let (g, x) = corpus(160, 11);
    let delta = GraphDelta::new()
        .insert_edge(0, 120)
        .set_features(3, vec![0.9, 0.1, 0.0, 0.4, 0.0, 0.2]);
    let request = SelectionRequest::new("g", GrainConfig::ball_d(), Budget::Fixed(8));

    let service = GrainService::with_capacity(4)
        .with_artifact_store(scratch.path())
        .unwrap();
    service.register_graph("g", g.clone(), x.clone()).unwrap();
    service.select(&request).unwrap(); // persists epoch-0 artifacts
    let e0_files = grain_files(scratch.path());
    assert_eq!(e0_files.len(), 3);
    assert!(e0_files
        .iter()
        .all(|p| p.file_name().unwrap().to_string_lossy().contains("-e0-")));

    service.apply_update("g", &delta).unwrap();
    // Default retention (1 epoch): the e0 files are gone, replaced by
    // the patched artifacts under the e1 address.
    let e1_files = grain_files(scratch.path());
    assert_eq!(e1_files.len(), 3, "files now: {e1_files:?}");
    assert!(e1_files
        .iter()
        .all(|p| p.file_name().unwrap().to_string_lossy().contains("-e1-")));

    // Force the next request through the store.
    service.pool().clear();
    let loads_before = service.store_stats().unwrap().loads;
    let from_disk = service.select(&request).unwrap();
    assert_eq!(from_disk.artifact_builds.propagation_builds, 0);
    assert_eq!(from_disk.artifact_builds.influence_builds, 0);
    assert_eq!(from_disk.artifact_builds.index_builds, 0);
    assert_eq!(service.store_stats().unwrap().loads, loads_before + 3);

    // Oracle: the same history replayed with no store at all. Any
    // stale-epoch load would break this bit-identity.
    let oracle = GrainService::with_capacity(4);
    oracle.register_graph("g", g, x).unwrap();
    oracle.select(&request).unwrap();
    oracle.apply_update("g", &delta).unwrap();
    let expected = oracle.select(&request).unwrap();
    assert_eq!(from_disk.outcome().selected, expected.outcome().selected);
    assert_eq!(
        from_disk.outcome().objective_trace,
        expected.outcome().objective_trace
    );
}

/// The scratch helper itself: tests never leak store directories.
#[test]
fn scratch_dirs_are_cleaned_up_on_drop() {
    let path = {
        let scratch = ScratchDir::new("leak-check");
        let store = ArtifactStore::open(scratch.path()).unwrap();
        let (g, _) = corpus(30, 1);
        let t = transition_matrix(&g, grain_graph::TransitionKind::Symmetric, true);
        let rows = InfluenceRows::for_kernel(&t, Kernel::SymNorm { k: 2 }, 1e-4);
        let addr = ContentAddress {
            graph_fingerprint: 1,
            epoch: 0,
            artifact_fingerprint: "leak".to_string(),
        };
        store.save_rows(&addr, &rows).unwrap();
        assert!(!grain_files(scratch.path()).is_empty());
        scratch.path().to_path_buf()
    };
    assert!(!path.exists(), "scratch dir {path:?} leaked");
}

//! Reproducibility: every pipeline stage is a pure function of its seed,
//! including under parallel execution.

use grain::prelude::*;

#[test]
fn datasets_are_seed_deterministic() {
    let a = grain::data::synthetic::cora_like(3);
    let b = grain::data::synthetic::cora_like(3);
    assert_eq!(a.graph.adjacency(), b.graph.adjacency());
    assert_eq!(a.features, b.features);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.split, b.split);
    let c = grain::data::synthetic::cora_like(4);
    assert_ne!(a.graph.adjacency(), c.graph.adjacency());
}

#[test]
fn grain_selection_is_deterministic() {
    let ds = grain::data::synthetic::papers_like(1000, 5);
    let run = || {
        let service = GrainService::new();
        service
            .register_graph("papers", ds.graph.clone(), ds.features.clone())
            .unwrap();
        let request = SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(20))
            .with_candidates(ds.split.train.clone());
        service.select(&request).unwrap().outcome().selected.clone()
    };
    assert_eq!(run(), run());
}

#[test]
fn selection_is_thread_count_invariant() {
    // GRAIN_THREADS=1 must give the same selection as the default count.
    let ds = grain::data::synthetic::papers_like(800, 6);
    let one_shot = || {
        SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features)
            .unwrap()
            .select(&ds.split.train, 15)
            .selected
    };
    let multi = one_shot();
    std::env::set_var("GRAIN_THREADS", "1");
    let single = one_shot();
    std::env::remove_var("GRAIN_THREADS");
    assert_eq!(multi, single);
}

#[test]
fn gnn_training_is_deterministic_per_seed() {
    let ds = grain::data::synthetic::papers_like(400, 7);
    let train: Vec<u32> = ds.split.train.iter().take(32).copied().collect();
    let run = |seed: u64| {
        let mut model = ModelKind::Gcn { hidden: 16 }.build(&ds, seed);
        let cfg = TrainConfig {
            epochs: 20,
            patience: None,
            seed,
            ..Default::default()
        };
        model.train(&ds.labels, &train, &[], &cfg);
        model.predict()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}

#[test]
fn influence_rows_identical_across_runs() {
    let ds = grain::data::synthetic::papers_like(600, 8);
    let t = grain::graph::transition_matrix(&ds.graph, TransitionKind::RandomWalk, true);
    let a = InfluenceRows::compute(&t, 2, 1e-4);
    let b = InfluenceRows::compute(&t, 2, 1e-4);
    for v in 0..ds.num_nodes() {
        assert_eq!(a.row(v), b.row(v));
    }
}

#[test]
fn baseline_selectors_deterministic_per_seed() {
    let ds = grain::data::synthetic::papers_like(500, 9);
    let ctx = SelectionContext::new(&ds, 11);
    let mut k1 = grain::select::kcenter::KCenterGreedySelector::new(4);
    let mut k2 = grain::select::kcenter::KCenterGreedySelector::new(4);
    assert_eq!(k1.select(&ctx, 10), k2.select(&ctx, 10));
    let mut d1 = grain::select::degree::DegreeSelector::new();
    let mut d2 = grain::select::degree::DegreeSelector::new();
    assert_eq!(d1.select(&ctx, 10), d2.select(&ctx, 10));
}

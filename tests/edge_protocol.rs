//! Wire-protocol conformance for the framed-TCP serving edge: the
//! handshake admits known tenants and refuses the rest with typed
//! codes, every structural violation of the frame grammar (bad magic,
//! wrong version, unknown kind, corrupt checksum, oversized or
//! undersized length prefix) is answered with a protocol error frame —
//! never a panic, never a hang — and a torn or poisoned connection
//! leaves the server fully healthy for the next client. The fuzz
//! battery drives the same contract with randomly mutated byte streams.

use grain::core::edge::proto::{
    self, Frame, Hello, WireRequest, CODE_PROTOCOL, CODE_UNAUTHENTICATED, CODE_UNKNOWN_TENANT,
};
use grain::core::edge::{EdgeError, RequestOptions};
use grain::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One server shared by every test in this binary: the edge is built to
/// serve many concurrent, mutually isolated connections, so hammering a
/// single instance from parallel tests IS the test.
fn shared_server() -> &'static EdgeServer {
    static SERVER: OnceLock<EdgeServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let dataset = grain::data::synthetic::papers_like(150, 7);
        let service = Arc::new(GrainService::new());
        service
            .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
            .unwrap();
        let config = EdgeConfig {
            max_connections: 64,
            tenants: vec![
                TenantSpec::open("gold", 10),
                TenantSpec::open("bronze", 1),
                TenantSpec::open("vault", 2).with_secret("s3cret"),
            ],
            ..EdgeConfig::default()
        };
        EdgeServer::bind("127.0.0.1:0", service, config).unwrap()
    })
}

fn addr() -> SocketAddr {
    shared_server().local_addr()
}

fn request(budget: usize, seed: u64) -> SelectionRequest {
    SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(budget)).with_seed(seed)
}

/// Connects raw and completes the hello handshake for `tenant`.
fn raw_hello(tenant: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    proto::write_frame(
        &mut stream,
        &Frame::Hello(Hello {
            tenant: tenant.into(),
            secret: String::new(),
        }),
    )
    .unwrap();
    match proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME_LEN).unwrap() {
        Frame::HelloAck(_) => stream,
        other => panic!("expected a hello-ack, got {other:?}"),
    }
}

/// The health probe: a fresh connection must complete a real selection.
/// Run after every poisoned connection to prove isolation.
fn server_still_serves(seed: u64) {
    let mut client = EdgeClient::connect(addr(), "gold", "").expect("fresh connection admitted");
    let report = client
        .request(request(3, seed), RequestOptions::default())
        .expect("fresh connection serves a real selection");
    assert_eq!(report.outcomes.len(), 1);
    assert_eq!(report.outcomes[0].selected.len(), 3);
}

#[test]
fn hello_ack_reports_the_tenant_admission_parameters() {
    let client = EdgeClient::connect(addr(), "gold", "").unwrap();
    let ack = client.ack();
    assert_eq!(ack.weight, 10);
    assert!(ack.rate_per_sec > 0.0);
    assert!(ack.burst > 0.0);
}

#[test]
fn unknown_tenant_and_bad_secret_are_typed_refusals() {
    match EdgeClient::connect(addr(), "nobody", "") {
        Err(EdgeError::Remote { code, .. }) => assert_eq!(code, CODE_UNKNOWN_TENANT),
        other => panic!("unknown tenant must be refused, got {other:?}"),
    }
    match EdgeClient::connect(addr(), "vault", "wrong") {
        Err(EdgeError::Remote { code, .. }) => assert_eq!(code, CODE_UNAUTHENTICATED),
        other => panic!("bad secret must be refused, got {other:?}"),
    }
    // The right secret is admitted with the tenant's own weight.
    let client = EdgeClient::connect(addr(), "vault", "s3cret").unwrap();
    assert_eq!(client.ack().weight, 2);
    assert!(shared_server().stats().auth_failures >= 2);
}

/// Flipped magic, bumped version, unknown kind, and a corrupted
/// checksum each draw a protocol-error frame (code 65) followed by a
/// clean close — and the very next connection is served normally.
#[test]
fn structural_frame_violations_are_typed_refusals_not_panics() {
    let valid = proto::encode_frame(&Frame::Request(Box::new(WireRequest {
        request_id: 1,
        priority: 0,
        deadline_ms: 0,
        on_deadline: OnDeadline::Fail,
        request: request(3, 1),
    })));

    // (label, byte index to poke, xor mask). The payload starts after the
    // 4-byte length prefix: magic at +0, version at +4, kind at +5; the
    // checksum trails, so poking the last byte corrupts it directly.
    let pokes = [
        ("bad magic", 4, 0xFFu8),
        ("bad version", 8, 0x7F),
        ("unknown kind", 9, 0x40),
        ("corrupt checksum", valid.len() - 1, 0x01),
    ];
    for (label, index, mask) in pokes {
        let mut poisoned = valid.clone();
        poisoned[index] ^= mask;
        // Poking magic/version/kind also breaks the checksum; re-sealing
        // it isolates the violation under test to the poked field.
        if label != "corrupt checksum" {
            let body_end = poisoned.len() - 8;
            let sum = proto::fnv1a64(&poisoned[4..body_end]);
            poisoned[body_end..].copy_from_slice(&sum.to_le_bytes());
        }
        let mut stream = raw_hello("gold");
        stream.write_all(&poisoned).unwrap();
        match proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME_LEN) {
            Ok(Frame::Error(err)) => {
                assert_eq!(err.code, CODE_PROTOCOL, "{label}: wrong error code");
            }
            other => panic!("{label}: expected a protocol-error frame, got {other:?}"),
        }
        // After refusing, the server closes this connection at a frame
        // boundary…
        assert!(matches!(
            proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME_LEN),
            Err(proto::FrameError::Closed)
        ));
        // …and keeps serving everyone else.
        server_still_serves(1000 + index as u64);
    }
}

/// A length prefix beyond the frame cap (or below the structural
/// minimum) is refused before any allocation happens server-side.
#[test]
fn oversized_and_undersized_length_prefixes_are_refused() {
    for (label, len) in [
        ("oversized", u32::MAX),
        ("above cap", (proto::DEFAULT_MAX_FRAME_LEN + 1) as u32),
        ("undersized", (proto::MIN_PAYLOAD_LEN - 1) as u32),
        ("zero", 0),
    ] {
        let mut stream = raw_hello("gold");
        stream.write_all(&len.to_le_bytes()).unwrap();
        match proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME_LEN) {
            Ok(Frame::Error(err)) => assert_eq!(err.code, CODE_PROTOCOL, "{label}"),
            other => panic!("{label}: expected a protocol-error frame, got {other:?}"),
        }
        server_still_serves(2000 + u64::from(len % 7919));
    }
}

/// Disconnecting mid-frame (after the length prefix promised more
/// bytes) tears the connection down without an error frame — there is
/// no one left to send it to — and without disturbing the server.
#[test]
fn mid_frame_disconnect_is_a_clean_teardown() {
    let valid = proto::encode_frame(&Frame::Request(Box::new(WireRequest {
        request_id: 1,
        priority: 0,
        deadline_ms: 0,
        on_deadline: OnDeadline::Fail,
        request: request(3, 2),
    })));
    for cut in [5, valid.len() / 2, valid.len() - 1] {
        let mut stream = raw_hello("gold");
        stream.write_all(&valid[..cut]).unwrap();
        drop(stream);
        server_still_serves(3000 + cut as u64);
    }
}

/// A response/hello frame where a request belongs is a protocol error,
/// not a dispatch.
#[test]
fn misplaced_frame_kinds_are_refused() {
    let mut stream = raw_hello("gold");
    proto::write_frame(
        &mut stream,
        &Frame::Hello(Hello {
            tenant: "gold".into(),
            secret: String::new(),
        }),
    )
    .unwrap();
    match proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME_LEN) {
        Ok(Frame::Error(err)) => assert_eq!(err.code, CODE_PROTOCOL),
        other => panic!("expected a protocol-error frame, got {other:?}"),
    }
    server_still_serves(4001);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Fuzz: an arbitrary mutation of a valid request frame (byte flip,
    /// truncation, or both) is either decoded as a request (the flip
    /// landed in a don't-care position and the checksum was re-sealed —
    /// impossible here, so in practice: refused) or answered with a
    /// typed error — and the server survives to serve a fresh
    /// connection bit-normally. Never a panic, never a hang.
    #[test]
    fn mutated_byte_streams_never_wedge_the_server(
        seed in 0u64..1_000,
        flip_at in 0usize..512,
        flip_mask in 1u8..255,
        cut_at in 0usize..600,
        flip_coin in 0u8..2,
    ) {
        let do_flip = flip_coin == 1;
        let valid = proto::encode_frame(&Frame::Request(Box::new(WireRequest {
            request_id: seed,
            priority: (seed % 4) as u8,
            deadline_ms: 0,
            on_deadline: OnDeadline::Fail,
            request: request(2 + (seed % 3) as usize, seed),
        })));
        let mut bytes = valid.clone();
        if do_flip {
            let at = flip_at % bytes.len();
            bytes[at] ^= flip_mask;
        }
        let cut = cut_at.min(bytes.len());
        // Always mutate: an untouched full frame is the conformance
        // tests' case, not the fuzzer's.
        if !do_flip && cut == bytes.len() {
            bytes.truncate(bytes.len() - 1);
        } else {
            bytes.truncate(cut.max(1));
        }

        let mut stream = raw_hello("gold");
        stream.write_all(&bytes).unwrap();
        // Stop sending so a short frame reads as EOF server-side rather
        // than blocking for bytes that will never come.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // Drain whatever the server says until it closes: every frame
        // must decode (the server never emits garbage), and the
        // connection must reach EOF rather than hang (the read timeout
        // set by `raw_hello` turns a hang into a test failure).
        loop {
            match proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME_LEN) {
                Ok(_) => {}
                Err(proto::FrameError::Closed) => break,
                Err(proto::FrameError::Io(e)) => {
                    prop_assert!(
                        e.kind() != std::io::ErrorKind::WouldBlock
                            && e.kind() != std::io::ErrorKind::TimedOut,
                        "server wedged on mutated input: {e}"
                    );
                    break;
                }
                Err(proto::FrameError::Protocol(msg)) => {
                    return Err(TestCaseError::fail(format!(
                        "server emitted an undecodable frame: {msg}"
                    )));
                }
            }
        }
        server_still_serves(5000 + seed);
    }
}

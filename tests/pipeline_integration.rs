//! End-to-end pipeline integration: dataset -> propagation -> influence ->
//! selection -> GNN training -> evaluation, across crates.

use grain::prelude::*;

fn dataset() -> Dataset {
    grain::data::synthetic::papers_like(900, 5)
}

/// One-shot selection through a fresh engine.
fn one_shot(
    config: GrainConfig,
    graph: &Graph,
    features: &DenseMatrix,
    candidates: &[u32],
    budget: usize,
) -> SelectionOutcome {
    SelectionEngine::new(config, graph, features)
        .unwrap()
        .select(candidates, budget)
}

#[test]
fn full_active_learning_pipeline_runs() {
    let ds = dataset();
    let budget = ds.budget(2);
    let outcome = one_shot(
        GrainConfig::ball_d(),
        &ds.graph,
        &ds.features,
        &ds.split.train,
        budget,
    );
    assert_eq!(outcome.selected.len(), budget);
    let mut model = ModelKind::Gcn { hidden: 32 }.build(&ds, 1);
    let report = model.train(
        &ds.labels,
        &outcome.selected,
        &ds.split.val,
        &TrainConfig::fast(),
    );
    assert!(report.epochs_run > 0);
    let acc = grain::gnn::metrics::accuracy(&model.predict(), &ds.labels, &ds.split.test);
    // 32 labels on a separable 16-class corpus must clearly beat chance.
    assert!(acc > 2.0 / ds.num_classes as f64, "accuracy {acc}");
}

#[test]
fn selection_stays_inside_candidate_pool() {
    let ds = dataset();
    let pool: Vec<u32> = ds.split.train.iter().take(100).copied().collect();
    let outcome = one_shot(GrainConfig::nn_d(), &ds.graph, &ds.features, &pool, 10);
    for s in &outcome.selected {
        assert!(pool.contains(s));
    }
}

#[test]
fn sigma_members_receive_threshold_influence() {
    // Every activated node must have an influence entry above the rule's
    // cutoff from at least one seed — ties Definition 3.2 to the output.
    let ds = dataset();
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features).unwrap();
    let outcome = engine.select(&ds.split.train, 12);
    let sigma_direct = engine.activation_index().sigma(&outcome.selected);
    assert_eq!(outcome.sigma, sigma_direct);
}

#[test]
fn kernels_plug_into_the_same_pipeline() {
    let ds = grain::data::synthetic::papers_like(400, 6);
    for kernel in [
        Kernel::RandomWalk { k: 2 },
        Kernel::SymNorm { k: 2 },
        Kernel::Ppr { k: 2, alpha: 0.1 },
        Kernel::S2gc { k: 2, alpha: 0.1 },
    ] {
        let config = GrainConfig {
            kernel,
            ..GrainConfig::ball_d()
        };
        let outcome = one_shot(config, &ds.graph, &ds.features, &ds.split.train, 8);
        assert_eq!(outcome.selected.len(), 8, "kernel {}", kernel.name());
        assert!(!outcome.sigma.is_empty(), "kernel {}", kernel.name());
    }
}

#[test]
fn baselines_and_grain_share_the_selector_interface() {
    let ds = dataset();
    let ctx = SelectionContext::new(&ds, 2);
    let mut methods = grain::select::standard_lineup(2);
    let budget = ds.budget(2);
    for method in &mut methods {
        // Learning-based baselines are slow; shrink via the trait only.
        if method.is_learning_based() {
            continue;
        }
        let picked = method.select(&ctx, budget);
        assert_eq!(picked.len(), budget, "method {}", method.name());
        grain::select::traits::validate_selection(&picked, ctx.candidates(), budget)
            .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
    }
}

#[test]
fn graph_io_round_trips_through_the_pipeline() {
    let ds = grain::data::synthetic::papers_like(300, 9);
    let mut buf = Vec::new();
    grain::graph::io::write_edge_list(&ds.graph, &mut buf).unwrap();
    let g2 = grain::graph::io::read_edge_list(buf.as_slice()).unwrap();
    assert_eq!(g2.num_nodes(), ds.graph.num_nodes());
    let outcome = one_shot(GrainConfig::ball_d(), &g2, &ds.features, &ds.split.train, 6);
    assert_eq!(outcome.selected.len(), 6);
}

//! The facade crate's public API: everything a downstream user needs is
//! reachable through `grain::prelude` and the re-exported modules.

use grain::prelude::*;

#[test]
fn prelude_covers_the_quickstart_surface() {
    // Construct every major public type through the prelude only.
    let config = GrainConfig::ball_d();
    assert!(config.validate().is_ok());
    let _selector = GrainSelector::new(config).unwrap();
    let _kernel = Kernel::Ppr { k: 2, alpha: 0.1 };
    let _rule = ThetaRule::RelativeToRowMax(0.25);
    let _model = ModelKind::default();
    let _cfg = TrainConfig::default();
    let _variant = GrainVariant::Full;
    let _div = DiversityKind::Nn;
    let _algo = GreedyAlgorithm::Lazy;
    let _prune = PruneStrategy::Degree { keep_fraction: 0.5 };
    // The service layer is reachable through the prelude too.
    let _service = GrainService::with_capacity(2);
    let _request = SelectionRequest::new("papers", config, Budget::Fraction(0.1))
        .with_variant(GrainVariant::NoDiversity)
        .with_seed(7);
    let _budget = Budget::Sweep(vec![4, 8]);
    let _event = PoolEvent::ColdMiss;
    let _stats = PoolStats::default();
    let _err: GrainError = GrainError::UnknownGraph {
        graph: "papers".into(),
    };
}

#[test]
fn service_round_trip_through_the_prelude() {
    let ds = grain::data::synthetic::papers_like(200, 4);
    let service = GrainService::new();
    service
        .register_graph("papers", ds.graph.clone(), ds.features.clone())
        .unwrap();
    let report = service
        .select(
            &SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(6))
                .with_candidates(ds.split.train.clone()),
        )
        .unwrap();
    assert_eq!(report.outcome().selected.len(), 6);
    assert_eq!(report.pool_event, PoolEvent::ColdMiss);
    assert_eq!(service.pool_stats().cold_misses, 1);
    assert_eq!(service.graphs(), vec!["papers"]);
}

#[test]
fn module_reexports_are_wired() {
    // One item per re-exported crate.
    let g = grain::graph::generators::erdos_renyi_gnm(10, 15, 1);
    assert_eq!(g.num_nodes(), 10);
    let m = grain::linalg::DenseMatrix::zeros(2, 2);
    assert_eq!(m.shape(), (2, 2));
    let ks = grain::prop::Kernel::all_table1(2);
    assert_eq!(ks.len(), 6);
    let ds = grain::data::synthetic::papers_like(100, 1);
    assert_eq!(ds.num_nodes(), 100);
    let lineup = grain::select::standard_lineup(1);
    assert_eq!(lineup.len(), 7);
}

#[test]
fn selection_outcome_exposes_observability_fields() {
    let ds = grain::data::synthetic::papers_like(300, 2);
    let outcome = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features)
        .unwrap()
        .select(&ds.split.train, 8);
    // All reporting fields are populated.
    assert_eq!(outcome.selected.len(), 8);
    assert_eq!(outcome.objective_trace.len(), 8);
    assert!(outcome.evaluations >= 8);
    assert!(outcome.timings.total >= outcome.timings.greedy);
    assert!(outcome.candidates_after_prune > 0);
    assert!(outcome.diversity_value >= 0.0);
}

#[test]
fn dataset_api_supports_budget_vocabulary() {
    let ds = grain::data::synthetic::papers_like(400, 3);
    assert_eq!(ds.budget(20), 20 * ds.num_classes);
    assert!(ds.edge_homophily() > 0.0);
    let stats = grain::data::stats::DatasetStats::of(&ds);
    assert_eq!(stats.nodes, 400);
}

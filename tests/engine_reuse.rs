//! The warm `SelectionEngine` contract: staged artifacts are built once,
//! shared across selections, invalidated precisely, and never change what
//! gets selected.

use grain::prelude::*;

fn corpus() -> grain::data::Dataset {
    grain::data::synthetic::papers_like(900, 17)
}

/// Cold reference: a fresh engine per call.
fn one_shot(config: GrainConfig, ds: &Dataset, budget: usize) -> SelectionOutcome {
    SelectionEngine::new(config, &ds.graph, &ds.features)
        .unwrap()
        .select(&ds.split.train, budget)
}

#[test]
fn warm_budget_sweep_is_bit_identical_to_one_shot_selects() {
    let ds = corpus();
    let budgets = [4usize, 8, 12, 16, 20];
    let config = GrainConfig::ball_d();

    let mut engine = SelectionEngine::new(config, &ds.graph, &ds.features).unwrap();
    let warm = engine.select_budgets(&ds.split.train, &budgets);

    // The heavy §3 stages ran exactly once across the whole sweep.
    let stats = engine.stats();
    assert_eq!(stats.propagation_builds, 1, "propagation must run once");
    assert_eq!(
        stats.influence_builds, 1,
        "influence rows must be computed once"
    );
    assert_eq!(stats.index_builds, 1, "activation index must be built once");
    assert_eq!(stats.transition_builds, 1);
    assert_eq!(stats.embedding_builds, 1);
    assert_eq!(stats.diversity_builds, 1);
    assert_eq!(stats.selections, budgets.len());

    // Bit-identical to five independent one-shot runs.
    for (outcome, &budget) in warm.iter().zip(&budgets) {
        let fresh = one_shot(config, &ds, budget);
        assert_eq!(
            outcome.selected, fresh.selected,
            "selection at budget {budget}"
        );
        assert_eq!(outcome.sigma, fresh.sigma, "sigma at budget {budget}");
        assert_eq!(
            outcome.objective_trace, fresh.objective_trace,
            "objective trace at budget {budget}"
        );
        assert_eq!(
            outcome.evaluations, fresh.evaluations,
            "evaluations at budget {budget}"
        );
    }
}

#[test]
fn nn_diversity_warm_sweep_matches_one_shot_too() {
    let ds = grain::data::synthetic::papers_like(500, 23);
    let budgets = [3usize, 9, 15];
    let config = GrainConfig::nn_d();
    let mut engine = SelectionEngine::new(config, &ds.graph, &ds.features).unwrap();
    let warm = engine.select_budgets(&ds.split.train, &budgets);
    assert_eq!(
        engine.stats().diversity_builds,
        1,
        "d_max must be computed once"
    );
    for (outcome, &budget) in warm.iter().zip(&budgets) {
        let fresh = one_shot(config, &ds, budget);
        assert_eq!(
            outcome.selected, fresh.selected,
            "NN-D selection at budget {budget}"
        );
    }
}

#[test]
fn theta_change_invalidates_only_the_activation_index() {
    let ds = corpus();
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features).unwrap();
    engine.select(&ds.split.train, 10);
    let before = engine.stats();

    let mut cfg = *engine.config();
    cfg.theta = ThetaRule::RelativeToRowMax(0.5);
    engine.set_config(cfg).unwrap();
    let outcome = engine.select(&ds.split.train, 10);
    assert_eq!(outcome.selected.len(), 10);

    let after = engine.stats();
    assert_eq!(
        after.index_builds,
        before.index_builds + 1,
        "index must rebuild"
    );
    assert_eq!(
        after.propagation_builds, before.propagation_builds,
        "propagation must persist"
    );
    assert_eq!(
        after.transition_builds, before.transition_builds,
        "transition must persist"
    );
    assert_eq!(
        after.influence_builds, before.influence_builds,
        "rows must persist"
    );
    assert_eq!(
        after.embedding_builds, before.embedding_builds,
        "embedding must persist"
    );
    assert_eq!(
        after.diversity_builds, before.diversity_builds,
        "diversity must persist"
    );
}

#[test]
fn kernel_depth_change_invalidates_kernel_artifacts_only() {
    let ds = corpus();
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features).unwrap();
    engine.select(&ds.split.train, 10);
    let before = engine.stats();

    let mut cfg = *engine.config();
    cfg.kernel = Kernel::RandomWalk { k: 3 };
    engine.set_config(cfg).unwrap();
    engine.select(&ds.split.train, 10);

    let after = engine.stats();
    // Same TransitionKind, so T persists; every kernel-keyed artifact
    // rebuilds exactly once.
    assert_eq!(
        after.transition_builds, before.transition_builds,
        "transition must persist"
    );
    assert_eq!(after.propagation_builds, before.propagation_builds + 1);
    assert_eq!(after.influence_builds, before.influence_builds + 1);
    assert_eq!(after.index_builds, before.index_builds + 1);
    assert_eq!(after.embedding_builds, before.embedding_builds + 1);
    assert_eq!(after.diversity_builds, before.diversity_builds + 1);

    // And the warm result still matches a one-shot at the new config.
    let warm = engine.select(&ds.split.train, 10);
    let fresh = one_shot(cfg, &ds, 10);
    assert_eq!(warm.selected, fresh.selected);
}

#[test]
fn radius_change_invalidates_only_the_diversity_precompute() {
    let ds = corpus();
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features).unwrap();
    engine.select(&ds.split.train, 10);
    let before = engine.stats();

    let mut cfg = *engine.config();
    cfg.radius = 0.1;
    engine.set_config(cfg).unwrap();
    engine.select(&ds.split.train, 10);

    let after = engine.stats();
    assert_eq!(
        after.diversity_builds,
        before.diversity_builds + 1,
        "balls must rebuild"
    );
    assert_eq!(
        after.index_builds, before.index_builds,
        "index must persist"
    );
    assert_eq!(after.propagation_builds, before.propagation_builds);
    assert_eq!(after.influence_builds, before.influence_builds);
    assert_eq!(after.embedding_builds, before.embedding_builds);
}

#[test]
fn gamma_algorithm_and_variant_changes_rebuild_nothing() {
    let ds = corpus();
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features).unwrap();
    engine.select(&ds.split.train, 8);
    let before = engine.stats();

    let mut cfg = *engine.config();
    cfg.gamma = 0.25;
    cfg.algorithm = GreedyAlgorithm::Plain;
    engine.set_config(cfg).unwrap();
    engine.select(&ds.split.train, 8);
    engine.select_variant(GrainVariant::NoDiversity, &ds.split.train, 8);

    let after = engine.stats();
    assert_eq!(after.propagation_builds, before.propagation_builds);
    assert_eq!(after.transition_builds, before.transition_builds);
    assert_eq!(after.influence_builds, before.influence_builds);
    assert_eq!(after.index_builds, before.index_builds);
    assert_eq!(after.embedding_builds, before.embedding_builds);
    assert_eq!(after.diversity_builds, before.diversity_builds);
    assert_eq!(after.selections, before.selections + 2);
}

#[test]
fn selector_facade_engine_constructor_round_trips() {
    let ds = corpus();
    let selector = GrainSelector::ball_d();
    let mut engine = selector.engine(&ds.graph, &ds.features).unwrap();
    let warm = engine.select(&ds.split.train, 12);
    // The facade constructor must be a pure pass-through to the engine.
    let fresh = one_shot(*selector.config(), &ds, 12);
    assert_eq!(warm.selected, fresh.selected);
    assert_eq!(engine.config(), selector.config());
}

// ---------------------------------------------------------------------------
// EnginePool contract: the engine guarantees above must survive pooling.
// ---------------------------------------------------------------------------

/// A second corpus that shares nothing with `corpus()`.
fn corpus_b() -> grain::data::Dataset {
    grain::data::synthetic::papers_like(700, 91)
}

fn pooled_service(capacity: usize) -> (GrainService, Dataset, Dataset) {
    let a = corpus();
    let b = corpus_b();
    let service = GrainService::with_capacity(capacity);
    service
        .register_graph("a", a.graph.clone(), a.features.clone())
        .unwrap();
    service
        .register_graph("b", b.graph.clone(), b.features.clone())
        .unwrap();
    (service, a, b)
}

fn theta_config(theta: f32) -> GrainConfig {
    GrainConfig {
        theta: ThetaRule::RelativeToRowMax(theta),
        ..GrainConfig::ball_d()
    }
}

#[test]
fn pool_evicts_in_lru_order() {
    let (service, a, _) = pooled_service(2);
    let configs = [theta_config(0.25), theta_config(0.4), theta_config(0.6)];
    let request = |cfg: GrainConfig| {
        SelectionRequest::new("a", cfg, Budget::Fixed(5)).with_candidates(a.split.train.clone())
    };
    // Fill: [c0], [c1, c0].
    service.select(&request(configs[0])).unwrap();
    service.select(&request(configs[1])).unwrap();
    // Touch c0 so c1 becomes the LRU: [c0, c1].
    assert_eq!(
        service.select(&request(configs[0])).unwrap().pool_event,
        PoolEvent::Hit
    );
    // c2 arrives: c1 (LRU) must be evicted, keeping [c2, c0].
    service.select(&request(configs[2])).unwrap();
    assert_eq!(service.pool_stats().evictions, 1);
    assert_eq!(
        service.select(&request(configs[0])).unwrap().pool_event,
        PoolEvent::Hit,
        "recently used engine must have survived"
    );
    assert_eq!(
        service.select(&request(configs[1])).unwrap().pool_event,
        PoolEvent::RebuildAfterEviction,
        "LRU engine must have been evicted"
    );
}

#[test]
fn capacity_one_pool_thrashes_but_stays_correct() {
    let (service, a, _) = pooled_service(1);
    let c0 = theta_config(0.25);
    let c1 = theta_config(0.5);
    let request = |cfg: GrainConfig| {
        SelectionRequest::new("a", cfg, Budget::Fixed(6)).with_candidates(a.split.train.clone())
    };
    let first = service.select(&request(c0)).unwrap();
    let mut alternating = Vec::new();
    for _ in 0..2 {
        alternating.push(service.select(&request(c1)).unwrap());
        alternating.push(service.select(&request(c0)).unwrap());
    }
    // Five alternating requests on a capacity-1 pool: two cold misses,
    // then every request rebuilds the engine the previous one evicted.
    let stats = service.pool_stats();
    assert_eq!(stats.cold_misses, 2);
    assert_eq!(stats.evicted_rebuilds, 3);
    assert_eq!(stats.evictions, 4);
    assert_eq!(stats.hits, 0, "capacity-1 alternation can never hit");
    // Thrash changes cost, never answers.
    let last = alternating.last().unwrap();
    assert_eq!(last.outcome().selected, first.outcome().selected);
    assert_eq!(
        last.outcome().objective_trace,
        first.outcome().objective_trace
    );
}

#[test]
fn same_config_on_two_graphs_uses_two_engines() {
    let (service, a, b) = pooled_service(4);
    let cfg = GrainConfig::ball_d();
    let ra = service
        .select(
            &SelectionRequest::new("a", cfg, Budget::Fixed(8))
                .with_candidates(a.split.train.clone()),
        )
        .unwrap();
    let rb = service
        .select(
            &SelectionRequest::new("b", cfg, Budget::Fixed(8))
                .with_candidates(b.split.train.clone()),
        )
        .unwrap();
    // Same fingerprint, different graph id: two distinct engines, each
    // cold-built, and isolated results.
    assert_eq!(ra.pool_event, PoolEvent::ColdMiss);
    assert_eq!(rb.pool_event, PoolEvent::ColdMiss);
    assert_eq!(service.pool().len(), 2);
    assert_ne!(
        ra.outcome().selected,
        rb.outcome().selected,
        "independent corpora should almost surely select differently"
    );
    // And each matches its own cold one-shot engine.
    for (report, ds) in [(&ra, &a), (&rb, &b)] {
        let fresh = SelectionEngine::new(cfg, &ds.graph, &ds.features)
            .unwrap()
            .select(&ds.split.train, 8);
        assert_eq!(report.outcome().selected, fresh.selected);
    }
}

#[test]
fn pool_hit_is_bit_identical_to_cold_engine() {
    let (service, a, _) = pooled_service(4);
    let cfg = GrainConfig::nn_d();
    let request = SelectionRequest::new("a", cfg, Budget::Sweep(vec![4, 9, 14]))
        .with_candidates(a.split.train.clone());
    let cold_report = service.select(&request).unwrap();
    let warm_report = service.select(&request).unwrap();
    assert!(warm_report.fully_warm());
    for ((warm, cold), &budget) in warm_report
        .outcomes
        .iter()
        .zip(&cold_report.outcomes)
        .zip(&warm_report.budgets)
    {
        // Warm-vs-cold within the pool ...
        assert_eq!(warm.selected, cold.selected, "budget {budget}");
        assert_eq!(warm.sigma, cold.sigma, "budget {budget}");
        assert_eq!(
            warm.objective_trace, cold.objective_trace,
            "budget {budget}"
        );
        assert_eq!(warm.evaluations, cold.evaluations, "budget {budget}");
        // ... and against an engine that never saw the pool.
        let fresh = SelectionEngine::new(cfg, &a.graph, &a.features)
            .unwrap()
            .select(&a.split.train, budget);
        assert_eq!(warm.selected, fresh.selected, "budget {budget}");
        assert_eq!(
            warm.objective_trace, fresh.objective_trace,
            "budget {budget}"
        );
    }
}

//! The warm `SelectionEngine` contract: staged artifacts are built once,
//! shared across selections, invalidated precisely, and never change what
//! gets selected.

use grain::prelude::*;

fn corpus() -> grain::data::Dataset {
    grain::data::synthetic::papers_like(900, 17)
}

#[test]
fn warm_budget_sweep_is_bit_identical_to_one_shot_selects() {
    let ds = corpus();
    let budgets = [4usize, 8, 12, 16, 20];
    let config = GrainConfig::ball_d();

    let mut engine = SelectionEngine::new(config, &ds.graph, &ds.features).unwrap();
    let warm = engine.select_budgets(&ds.split.train, &budgets);

    // The heavy §3 stages ran exactly once across the whole sweep.
    let stats = engine.stats();
    assert_eq!(stats.propagation_builds, 1, "propagation must run once");
    assert_eq!(
        stats.influence_builds, 1,
        "influence rows must be computed once"
    );
    assert_eq!(stats.index_builds, 1, "activation index must be built once");
    assert_eq!(stats.transition_builds, 1);
    assert_eq!(stats.embedding_builds, 1);
    assert_eq!(stats.diversity_builds, 1);
    assert_eq!(stats.selections, budgets.len());

    // Bit-identical to five independent one-shot runs.
    let selector = GrainSelector::new(config).unwrap();
    for (outcome, &budget) in warm.iter().zip(&budgets) {
        let fresh = selector.select(&ds.graph, &ds.features, &ds.split.train, budget);
        assert_eq!(
            outcome.selected, fresh.selected,
            "selection at budget {budget}"
        );
        assert_eq!(outcome.sigma, fresh.sigma, "sigma at budget {budget}");
        assert_eq!(
            outcome.objective_trace, fresh.objective_trace,
            "objective trace at budget {budget}"
        );
        assert_eq!(
            outcome.evaluations, fresh.evaluations,
            "evaluations at budget {budget}"
        );
    }
}

#[test]
fn nn_diversity_warm_sweep_matches_one_shot_too() {
    let ds = grain::data::synthetic::papers_like(500, 23);
    let budgets = [3usize, 9, 15];
    let config = GrainConfig::nn_d();
    let mut engine = SelectionEngine::new(config, &ds.graph, &ds.features).unwrap();
    let warm = engine.select_budgets(&ds.split.train, &budgets);
    assert_eq!(
        engine.stats().diversity_builds,
        1,
        "d_max must be computed once"
    );
    let selector = GrainSelector::new(config).unwrap();
    for (outcome, &budget) in warm.iter().zip(&budgets) {
        let fresh = selector.select(&ds.graph, &ds.features, &ds.split.train, budget);
        assert_eq!(
            outcome.selected, fresh.selected,
            "NN-D selection at budget {budget}"
        );
    }
}

#[test]
fn theta_change_invalidates_only_the_activation_index() {
    let ds = corpus();
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features).unwrap();
    engine.select(&ds.split.train, 10);
    let before = engine.stats();

    let mut cfg = *engine.config();
    cfg.theta = ThetaRule::RelativeToRowMax(0.5);
    engine.set_config(cfg).unwrap();
    let outcome = engine.select(&ds.split.train, 10);
    assert_eq!(outcome.selected.len(), 10);

    let after = engine.stats();
    assert_eq!(
        after.index_builds,
        before.index_builds + 1,
        "index must rebuild"
    );
    assert_eq!(
        after.propagation_builds, before.propagation_builds,
        "propagation must persist"
    );
    assert_eq!(
        after.transition_builds, before.transition_builds,
        "transition must persist"
    );
    assert_eq!(
        after.influence_builds, before.influence_builds,
        "rows must persist"
    );
    assert_eq!(
        after.embedding_builds, before.embedding_builds,
        "embedding must persist"
    );
    assert_eq!(
        after.diversity_builds, before.diversity_builds,
        "diversity must persist"
    );
}

#[test]
fn kernel_depth_change_invalidates_kernel_artifacts_only() {
    let ds = corpus();
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features).unwrap();
    engine.select(&ds.split.train, 10);
    let before = engine.stats();

    let mut cfg = *engine.config();
    cfg.kernel = Kernel::RandomWalk { k: 3 };
    engine.set_config(cfg).unwrap();
    engine.select(&ds.split.train, 10);

    let after = engine.stats();
    // Same TransitionKind, so T persists; every kernel-keyed artifact
    // rebuilds exactly once.
    assert_eq!(
        after.transition_builds, before.transition_builds,
        "transition must persist"
    );
    assert_eq!(after.propagation_builds, before.propagation_builds + 1);
    assert_eq!(after.influence_builds, before.influence_builds + 1);
    assert_eq!(after.index_builds, before.index_builds + 1);
    assert_eq!(after.embedding_builds, before.embedding_builds + 1);
    assert_eq!(after.diversity_builds, before.diversity_builds + 1);

    // And the warm result still matches a one-shot at the new config.
    let warm = engine.select(&ds.split.train, 10);
    let fresh =
        GrainSelector::new(cfg)
            .unwrap()
            .select(&ds.graph, &ds.features, &ds.split.train, 10);
    assert_eq!(warm.selected, fresh.selected);
}

#[test]
fn radius_change_invalidates_only_the_diversity_precompute() {
    let ds = corpus();
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features).unwrap();
    engine.select(&ds.split.train, 10);
    let before = engine.stats();

    let mut cfg = *engine.config();
    cfg.radius = 0.1;
    engine.set_config(cfg).unwrap();
    engine.select(&ds.split.train, 10);

    let after = engine.stats();
    assert_eq!(
        after.diversity_builds,
        before.diversity_builds + 1,
        "balls must rebuild"
    );
    assert_eq!(
        after.index_builds, before.index_builds,
        "index must persist"
    );
    assert_eq!(after.propagation_builds, before.propagation_builds);
    assert_eq!(after.influence_builds, before.influence_builds);
    assert_eq!(after.embedding_builds, before.embedding_builds);
}

#[test]
fn gamma_algorithm_and_variant_changes_rebuild_nothing() {
    let ds = corpus();
    let mut engine = SelectionEngine::new(GrainConfig::ball_d(), &ds.graph, &ds.features).unwrap();
    engine.select(&ds.split.train, 8);
    let before = engine.stats();

    let mut cfg = *engine.config();
    cfg.gamma = 0.25;
    cfg.algorithm = GreedyAlgorithm::Plain;
    engine.set_config(cfg).unwrap();
    engine.select(&ds.split.train, 8);
    engine.select_variant(GrainVariant::NoDiversity, &ds.split.train, 8);

    let after = engine.stats();
    assert_eq!(after.propagation_builds, before.propagation_builds);
    assert_eq!(after.transition_builds, before.transition_builds);
    assert_eq!(after.influence_builds, before.influence_builds);
    assert_eq!(after.index_builds, before.index_builds);
    assert_eq!(after.embedding_builds, before.embedding_builds);
    assert_eq!(after.diversity_builds, before.diversity_builds);
    assert_eq!(after.selections, before.selections + 2);
}

#[test]
fn selector_facade_engine_constructor_round_trips() {
    let ds = corpus();
    let selector = GrainSelector::ball_d();
    let mut engine = selector.engine(&ds.graph, &ds.features).unwrap();
    let warm = engine.select(&ds.split.train, 12);
    let one_shot = selector.select(&ds.graph, &ds.features, &ds.split.train, 12);
    assert_eq!(warm.selected, one_shot.selected);
    assert_eq!(engine.config(), selector.config());
}

//! The concurrent `GrainService` contract: one shared `&self` service
//! under M threads × mixed artifact fingerprints must answer every
//! request bit-identically to a single-threaded oracle run, the cold
//! build latch must construct each artifact exactly once however many
//! requests race for it, and the `parallelism` knob must never change a
//! selection.
//!
//! Run with `RUST_TEST_THREADS` unpinned so the harness itself adds
//! scheduling noise on top of the in-test threads (CI does).

use grain::prelude::*;
use std::sync::{Arc, Barrier};

const WORKER_THREADS: usize = 8;
const ROUNDS_PER_WORKER: usize = 3;

fn datasets() -> [(String, Dataset); 2] {
    [
        (
            "cora".to_string(),
            grain::data::synthetic::papers_like(500, 51),
        ),
        (
            "pubmed".to_string(),
            grain::data::synthetic::papers_like(420, 53),
        ),
    ]
}

fn register_all(service: &GrainService, corpora: &[(String, Dataset)]) {
    for (id, ds) in corpora {
        service
            .register_graph(id.clone(), ds.graph.clone(), ds.features.clone())
            .unwrap();
    }
}

/// 2 graphs × 2 artifact fingerprints × {fixed, sweep} budgets, plus a
/// greedy-only γ twist that shares an engine with its base fingerprint.
fn mixed_requests(corpora: &[(String, Dataset)]) -> Vec<SelectionRequest> {
    let base = GrainConfig::ball_d();
    let tight = GrainConfig {
        theta: ThetaRule::RelativeToRowMax(0.5),
        ..base
    };
    let mut gamma = base;
    gamma.gamma = 0.25;
    let mut requests = Vec::new();
    for (id, ds) in corpora {
        for cfg in [base, tight, gamma] {
            requests.push(
                SelectionRequest::new(id.clone(), cfg, Budget::Fixed(6))
                    .with_candidates(ds.split.train.clone()),
            );
            requests.push(
                SelectionRequest::new(id.clone(), cfg, Budget::Sweep(vec![3, 9]))
                    .with_candidates(ds.split.train.clone()),
            );
        }
    }
    requests
}

fn assert_same_answers(got: &SelectionReport, want: &SelectionReport, label: &str) {
    assert_eq!(got.budgets, want.budgets, "{label}");
    assert_eq!(got.outcomes.len(), want.outcomes.len(), "{label}");
    for (g, w) in got.outcomes.iter().zip(&want.outcomes) {
        assert_eq!(g.selected, w.selected, "{label}");
        assert_eq!(g.sigma, w.sigma, "{label}");
        assert_eq!(g.objective_trace, w.objective_trace, "{label}");
        assert_eq!(g.evaluations, w.evaluations, "{label}");
    }
}

#[test]
fn grain_service_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GrainService>();
    assert_send_sync::<Arc<GrainService>>();
}

#[test]
fn concurrent_mixed_fingerprints_match_single_threaded_oracle() {
    let corpora = datasets();
    let requests = mixed_requests(&corpora);

    // Oracle: the same workload through a fresh single-threaded service.
    let oracle_service = GrainService::with_capacity(16);
    register_all(&oracle_service, &corpora);
    let oracle: Vec<SelectionReport> = requests
        .iter()
        .map(|r| oracle_service.select(r).unwrap())
        .collect();

    // Shared sharded service, M threads walking the request list from
    // different offsets so every fingerprint sees cold and warm races.
    let service = GrainService::with_topology(4, 2);
    register_all(&service, &corpora);
    std::thread::scope(|scope| {
        for worker in 0..WORKER_THREADS {
            let service = &service;
            let requests = &requests;
            let oracle = &oracle;
            scope.spawn(move || {
                for round in 0..ROUNDS_PER_WORKER {
                    for step in 0..requests.len() {
                        let i = (worker * 5 + round + step) % requests.len();
                        let report = service.select(&requests[i]).unwrap();
                        assert_same_answers(
                            &report,
                            &oracle[i],
                            &format!("worker {worker} round {round} request {i}"),
                        );
                    }
                }
            });
        }
    });

    let stats = service.pool_stats();
    assert_eq!(
        stats.lookups(),
        WORKER_THREADS * ROUNDS_PER_WORKER * requests.len(),
        "every request must be accounted for: {stats:?}"
    );
    assert!(
        stats.hits > stats.misses(),
        "a replayed workload must be dominated by warm hits: {stats:?}"
    );
}

#[test]
fn cold_build_latch_builds_each_artifact_exactly_once() {
    let corpora = datasets();
    let service = Arc::new(GrainService::with_topology(4, 2));
    register_all(&service, &corpora);
    let request = SelectionRequest::new("cora", GrainConfig::ball_d(), Budget::Fixed(8))
        .with_candidates(corpora[0].1.split.train.clone());

    let barrier = Arc::new(Barrier::new(WORKER_THREADS));
    let reports: Vec<SelectionReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WORKER_THREADS)
            .map(|_| {
                let service = Arc::clone(&service);
                let barrier = Arc::clone(&barrier);
                let request = request.clone();
                scope.spawn(move || {
                    barrier.wait(); // all threads hit the cold key together
                    service.select(&request).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The latch admits exactly one builder; everyone else joins its build
    // or hits the engine it published.
    let mut cold_misses = 0;
    let mut propagation_builds = 0;
    let mut influence_builds = 0;
    let mut index_builds = 0;
    let mut diversity_builds = 0;
    for report in &reports {
        propagation_builds += report.artifact_builds.propagation_builds;
        influence_builds += report.artifact_builds.influence_builds;
        index_builds += report.artifact_builds.index_builds;
        diversity_builds += report.artifact_builds.diversity_builds;
        match report.pool_event {
            PoolEvent::ColdMiss => cold_misses += 1,
            PoolEvent::JoinedBuild | PoolEvent::Hit => {}
            other => panic!("unexpected pool event {other:?}"),
        }
    }
    assert_eq!(cold_misses, 1, "one builder only");
    assert_eq!(propagation_builds, 1, "X^(k) must be propagated once");
    assert_eq!(influence_builds, 1, "influence rows must be computed once");
    assert_eq!(index_builds, 1, "activation index must be built once");
    assert_eq!(diversity_builds, 1, "ball lists must be built once");
    assert_eq!(service.pool().len(), 1, "one engine serves the whole race");

    // And every racer got the bit-identical answer.
    for report in &reports[1..] {
        assert_same_answers(report, &reports[0], "latch race");
    }
}

#[test]
fn parallelism_knob_is_selection_invariant_and_shares_one_engine() {
    let corpora = datasets();
    let (_, ds) = &corpora[0];
    let service = GrainService::new();
    register_all(&service, &corpora);

    let mut reference: Option<SelectionReport> = None;
    for parallelism in [1usize, 2, 8] {
        let mut config = GrainConfig::ball_d();
        config.parallelism = parallelism;
        let report = service
            .select(
                &SelectionRequest::new("cora", config, Budget::Sweep(vec![4, 8, 12]))
                    .with_candidates(ds.split.train.clone()),
            )
            .unwrap();
        if let Some(reference) = &reference {
            assert_same_answers(&report, reference, &format!("parallelism {parallelism}"));
            assert!(
                report.fully_warm(),
                "parallelism is no artifact field; engines must be shared"
            );
        } else {
            assert_eq!(report.pool_event, PoolEvent::ColdMiss);
            reference = Some(report);
        }
    }
    assert_eq!(
        service.pool().len(),
        1,
        "all parallelism values share one pooled engine"
    );
}

#[test]
fn submit_batch_is_bit_identical_to_serial_submission() {
    let corpora = datasets();
    let requests = mixed_requests(&corpora);

    let serial_service = GrainService::with_capacity(16);
    register_all(&serial_service, &corpora);
    let serial: Vec<SelectionReport> = requests
        .iter()
        .map(|r| serial_service.select(r).unwrap())
        .collect();

    let batch_service = GrainService::with_topology(4, 2);
    register_all(&batch_service, &corpora);
    for workers in [1usize, 4] {
        let batched = batch_service.submit_batch_with_workers(&requests, workers);
        assert_eq!(batched.len(), requests.len());
        for (i, report) in batched.into_iter().enumerate() {
            assert_same_answers(
                &report.unwrap(),
                &serial[i],
                &format!("batch workers {workers} request {i}"),
            );
        }
    }
}

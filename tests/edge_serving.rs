//! The serving contract over real sockets: many concurrent clients
//! across tenants, pipelined and duplicate-heavy traffic — and every
//! response that comes back over the wire is **bit-identical** to the
//! same [`SelectionRequest`] submitted in-process. Coalescing, rate
//! limiting, and the connection cap are all exercised through the
//! protocol, not through test-only backdoors.

use grain::core::edge::proto::{WireOutcome, WireReport, CODE_AT_CAPACITY, CODE_RATE_LIMITED};
use grain::core::edge::{EdgeError, RequestOptions};
use grain::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TestEdge {
    server: EdgeServer,
    candidates: Vec<u32>,
}

/// A server over a small synthetic corpus, pre-warmed so wire traffic
/// lands on the pool's warm path (cold-build latency is another test's
/// subject).
fn edge_with(tenants: Vec<TenantSpec>, max_connections: usize) -> TestEdge {
    let dataset = grain::data::synthetic::papers_like(200, 17);
    let service = Arc::new(GrainService::new());
    service
        .register_graph("papers", dataset.graph.clone(), dataset.features.clone())
        .unwrap();
    let candidates = dataset.split.train.clone();
    let prime = SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(2))
        .with_candidates(candidates.clone());
    service.select(&prime).unwrap();
    let config = EdgeConfig {
        max_connections,
        tenants,
        ..EdgeConfig::default()
    };
    let server = EdgeServer::bind("127.0.0.1:0", service, config).unwrap();
    TestEdge { server, candidates }
}

fn two_tenants() -> Vec<TenantSpec> {
    vec![TenantSpec::open("gold", 10), TenantSpec::open("bronze", 1)]
}

impl TestEdge {
    fn request(&self, budget: usize, seed: u64) -> SelectionRequest {
        SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(budget))
            .with_candidates(self.candidates.clone())
            .with_seed(seed)
    }

    /// The in-process oracle: the deterministic wire view of a serial
    /// `GrainService` submission of the same request.
    fn oracle(&self, request: &SelectionRequest) -> (Vec<usize>, Vec<WireOutcome>) {
        let report = self.server.service().select(request).unwrap();
        let wire = WireReport::from_report(0, &report);
        (wire.budgets, wire.outcomes)
    }
}

/// Six pipelined clients across two tenants, each replaying ten
/// distinct requests: all sixty wire responses carry exactly the bytes
/// the serial in-process oracle produced.
#[test]
fn every_wire_response_is_bit_identical_to_the_serial_in_process_oracle() {
    let edge = edge_with(two_tenants(), 64);
    let shapes: Vec<(usize, u64)> = (2..=6).flat_map(|b| [(b, 1), (b, 2)]).collect();
    let oracles: Vec<_> = shapes
        .iter()
        .map(|&(budget, seed)| edge.oracle(&edge.request(budget, seed)))
        .collect();

    let addr = edge.server.local_addr();
    std::thread::scope(|scope| {
        for worker in 0..6u64 {
            let tenant = if worker % 2 == 0 { "gold" } else { "bronze" };
            let shapes = &shapes;
            let oracles = &oracles;
            let edge = &edge;
            scope.spawn(move || {
                let mut client = EdgeClient::connect(addr, tenant, "").unwrap();
                // Pipeline the whole batch before reading anything.
                let ids: Vec<u64> = shapes
                    .iter()
                    .map(|&(budget, seed)| {
                        client
                            .send(edge.request(budget, seed), RequestOptions::default())
                            .unwrap()
                    })
                    .collect();
                // Responses come back in submission order per connection.
                for (i, id) in ids.iter().enumerate() {
                    let report = client.recv().unwrap();
                    assert_eq!(report.request_id, *id, "worker {worker}: order broke");
                    let (budgets, outcomes) = &oracles[i];
                    assert_eq!(&report.budgets, budgets, "worker {worker} shape {i}");
                    assert_eq!(
                        &report.outcomes, outcomes,
                        "worker {worker} shape {i}: wire bytes diverged from the oracle"
                    );
                }
            });
        }
    });
    assert!(edge.server.stats().requests_served >= 60);
}

/// A duplicate storm from four clients against a paused scheduler
/// coalesces into one execution — and the one answer fans back out to
/// every waiter, identical on every connection.
#[test]
fn duplicate_storms_coalesce_across_the_wire() {
    let mut tenants = two_tenants();
    // Identical requests coalesce across tenants too: joining an
    // in-flight slot is work-conserving, so it is never refused.
    tenants.push(TenantSpec::open("silver", 3));
    let edge = edge_with(tenants, 64);
    let (oracle_budgets, oracle_outcomes) = edge.oracle(&edge.request(5, 9));

    edge.server.scheduler().pause();
    let addr = edge.server.local_addr();
    let before = edge.server.scheduler().stats().coalesced;
    let mut clients: Vec<EdgeClient> = ["gold", "bronze", "silver", "gold"]
        .into_iter()
        .map(|tenant| EdgeClient::connect(addr, tenant, "").unwrap())
        .collect();
    for client in &mut clients {
        for _ in 0..3 {
            client
                .send(edge.request(5, 9), RequestOptions::default())
                .unwrap();
        }
    }
    // All twelve submissions must be queued (coalesced) before the
    // queue is released, or there is nothing to coalesce into.
    let deadline = Instant::now() + Duration::from_secs(10);
    while edge.server.scheduler().stats().coalesced < before + 11 {
        assert!(Instant::now() < deadline, "duplicates never coalesced");
        std::thread::sleep(Duration::from_millis(2));
    }
    edge.server.scheduler().resume();
    for (c, client) in clients.iter_mut().enumerate() {
        for _ in 0..3 {
            let report = client.recv().unwrap();
            assert_eq!(report.budgets, oracle_budgets);
            assert_eq!(
                report.outcomes, oracle_outcomes,
                "client {c}: coalesced fan-out diverged from the oracle"
            );
        }
    }
    let coalesced = edge.server.scheduler().stats().coalesced - before;
    assert!(
        coalesced >= 11,
        "expected ≥11 coalesced joins, got {coalesced}"
    );
}

/// Draining the token bucket draws typed `RATE_LIMITED` refusals that
/// leave the connection open; once the bucket refills, the same
/// connection serves again.
#[test]
fn rate_limit_refusals_are_typed_and_keep_the_connection_open() {
    let edge = edge_with(
        vec![TenantSpec::open("throttled", 1).with_rate(5.0, 2.0)],
        8,
    );
    let addr = edge.server.local_addr();
    let mut client = EdgeClient::connect(addr, "throttled", "").unwrap();
    for _ in 0..5 {
        client
            .send(edge.request(3, 4), RequestOptions::default())
            .unwrap();
    }
    let mut served = 0usize;
    let mut limited = 0usize;
    for _ in 0..5 {
        match client.recv() {
            Ok(report) => {
                assert_eq!(report.outcomes[0].selected.len(), 3);
                served += 1;
            }
            Err(EdgeError::Remote { code, .. }) => {
                assert_eq!(code, CODE_RATE_LIMITED);
                limited += 1;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert_eq!(served, 2, "burst of 2.0 admits exactly two immediately");
    assert_eq!(limited, 3);
    assert!(edge.server.stats().rate_limited >= 3);

    // 500ms at 5/s refills plenty for one more — on the SAME connection.
    std::thread::sleep(Duration::from_millis(500));
    let report = client
        .request(edge.request(3, 4), RequestOptions::default())
        .expect("refilled bucket serves on the surviving connection");
    assert_eq!(report.outcomes[0].selected.len(), 3);
}

/// The connection cap refuses the overflow client with a typed
/// `AT_CAPACITY` error, and the slot is reusable once the holder leaves.
#[test]
fn connection_cap_refuses_overflow_and_recycles_the_slot() {
    let edge = edge_with(two_tenants(), 1);
    let addr = edge.server.local_addr();
    let holder = EdgeClient::connect(addr, "gold", "").unwrap();
    match EdgeClient::connect(addr, "bronze", "") {
        Err(EdgeError::Remote { code, .. }) => assert_eq!(code, CODE_AT_CAPACITY),
        other => panic!("overflow connection must be refused, got {other:?}"),
    }
    assert!(edge.server.stats().connections_rejected >= 1);

    drop(holder);
    // Slot release is asynchronous with the holder's teardown.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match EdgeClient::connect(addr, "bronze", "") {
            Ok(mut client) => {
                let report = client
                    .request(edge.request(2, 5), RequestOptions::default())
                    .unwrap();
                assert_eq!(report.outcomes[0].selected.len(), 2);
                break;
            }
            Err(EdgeError::Remote { code, .. }) if code == CODE_AT_CAPACITY => {
                assert!(Instant::now() < deadline, "capacity slot never recycled");
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
}

/// Per-tenant scheduler counters see wire traffic: admitted and
/// completed track each tenant's own submissions.
#[test]
fn per_tenant_counters_track_wire_traffic() {
    let edge = edge_with(two_tenants(), 8);
    let addr = edge.server.local_addr();
    let mut gold = EdgeClient::connect(addr, "gold", "").unwrap();
    let mut bronze = EdgeClient::connect(addr, "bronze", "").unwrap();
    for seed in 0..3 {
        gold.request(edge.request(3, 20 + seed), RequestOptions::default())
            .unwrap();
    }
    bronze
        .request(edge.request(3, 30), RequestOptions::default())
        .unwrap();

    let stats = edge.server.tenant_stats();
    let of = |tenant: &str| {
        stats
            .iter()
            .find(|t| t.tenant == tenant)
            .unwrap_or_else(|| panic!("no stats row for {tenant}"))
    };
    let (g, b) = (of("gold"), of("bronze"));
    assert_eq!(g.weight, 10);
    assert_eq!(b.weight, 1);
    assert!(g.admitted >= 3, "gold admitted {}", g.admitted);
    assert!(g.completed >= 3, "gold completed {}", g.completed);
    assert!(b.admitted >= 1 && b.completed >= 1);
    assert!(edge.server.stats().requests_served >= 4);
}

//! Live-corpus maintenance: `apply_update` against cold-rebuild oracles.
//!
//! The streaming subsystem's contract is *bit-identity*: after a
//! [`GraphDelta`] lands, every artifact a patched engine serves must be
//! byte-for-byte what a cold build over the mutated corpus would have
//! produced — so selections, objective traces, and evaluation counts are
//! indistinguishable from a freshly registered service. This suite
//! drives that contract end-to-end through the public API on randomized
//! graphs and deltas, across kernels, top-k truncation, and thread
//! counts, plus the epoch semantics the scheduler layers on top.

use grain::graph::generators;
use grain::prelude::*;
use proptest::prelude::*;

const FEATURE_DIM: usize = 6;

fn corpus(n: usize, seed: u64) -> (Graph, DenseMatrix) {
    let g = generators::erdos_renyi_gnm(n, 3 * n, seed);
    let mut x = DenseMatrix::zeros(n, FEATURE_DIM);
    for v in 0..n {
        for j in 0..FEATURE_DIM {
            x.set(v, j, ((v * 31 + j * 7 + seed as usize) % 13) as f32 * 0.1);
        }
    }
    (g, x)
}

fn has_edge(g: &Graph, u: u32, v: u32) -> bool {
    g.adjacency().row(u as usize).0.binary_search(&v).is_ok()
}

/// A deterministic mixed delta for `g`: up to three deletions of live
/// edges, up to three insertions of absent edges, and (optionally) one
/// feature-row overwrite — never empty, never self-contradictory.
fn mutation(g: &Graph, seed: u64, with_features: bool) -> GraphDelta {
    let n = g.num_nodes() as u64;
    let mut delta = GraphDelta::new();
    let mut touched: Vec<(u32, u32)> = Vec::new();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..8 {
        let v = (next() % n) as u32;
        let (cols, _) = g.adjacency().row(v as usize);
        if cols.is_empty() {
            continue;
        }
        let u = cols[next() as usize % cols.len()];
        let key = (v.min(u), v.max(u));
        if touched.contains(&key) {
            continue;
        }
        touched.push(key);
        delta = delta.delete_edge(v, u);
        if delta.num_deletes() == 3 {
            break;
        }
    }
    for _ in 0..16 {
        let a = (next() % n) as u32;
        let b = (next() % n) as u32;
        let key = (a.min(b), a.max(b));
        if a == b || has_edge(g, a, b) || touched.contains(&key) {
            continue;
        }
        touched.push(key);
        delta = delta.insert_edge(a, b);
        if delta.num_inserts() == 3 {
            break;
        }
    }
    if with_features || delta.is_empty() {
        let v = (next() % n) as u32;
        let row: Vec<f32> = (0..FEATURE_DIM).map(|j| (j as f32 + 1.0) * 0.05).collect();
        delta = delta.set_features(v, row);
    }
    delta
}

/// The cold oracle's corpus: replay the delta on a scratch service (no
/// warm engines, so the splice path alone runs) and read back the
/// mutated snapshot.
fn mutated_corpus(g: &Graph, x: &DenseMatrix, delta: &GraphDelta) -> (Graph, DenseMatrix) {
    let service = GrainService::new();
    service
        .register_graph("scratch", g.clone(), x.clone())
        .unwrap();
    service.apply_update("scratch", delta).unwrap();
    (
        (*service.graph("scratch").unwrap()).clone(),
        (*service.features("scratch").unwrap()).clone(),
    )
}

fn config_for(kernel: Kernel, top_k: usize, parallelism: usize) -> GrainConfig {
    GrainConfig {
        kernel,
        influence_row_top_k: top_k,
        parallelism,
        ..GrainConfig::ball_d()
    }
}

fn assert_bit_identical(a: &SelectionReport, b: &SelectionReport, context: &str) {
    let (ao, bo) = (a.outcome(), b.outcome());
    assert_eq!(ao.selected, bo.selected, "{context}: selected set");
    assert_eq!(
        ao.objective_trace.len(),
        bo.objective_trace.len(),
        "{context}: trace length"
    );
    for (i, (x, y)) in ao
        .objective_trace
        .iter()
        .zip(&bo.objective_trace)
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: objective bit drift at round {i} ({x} vs {y})"
        );
    }
    assert_eq!(ao.evaluations, bo.evaluations, "{context}: evaluations");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// After `apply_update`, a warm selection is bit-identical to a cold
    /// service registered directly with the mutated corpus — across the
    /// paper's kernels, with and without top-k row truncation, and
    /// regardless of thread count.
    #[test]
    fn apply_update_is_bit_identical_to_cold_rebuild(
        seed in 0u64..500,
        nodes in 24usize..56,
    ) {
        let (g, x) = corpus(nodes, seed);
        let delta = mutation(&g, seed ^ 0xd1f7, seed % 2 == 0);
        let (g2, x2) = mutated_corpus(&g, &x, &delta);
        for kernel in [
            Kernel::SymNorm { k: 2 },
            Kernel::RandomWalk { k: 2 },
            Kernel::Ppr { k: 2, alpha: 0.15 },
        ] {
            for top_k in [0usize, 8] {
                for parallelism in [1usize, 2, 7] {
                    let config = config_for(kernel, top_k, parallelism);
                    let request =
                        SelectionRequest::new("live", config, Budget::Fixed(6));

                    let live = GrainService::new();
                    live.register_graph("live", g.clone(), x.clone()).unwrap();
                    live.select(&request).unwrap(); // warm the engine on epoch 0
                    let report = live.apply_update("live", &delta).unwrap();
                    prop_assert_eq!(report.epoch, 1);
                    prop_assert_eq!(report.engines_patched(), 1);
                    let patched = live.select(&request).unwrap();
                    // The patched engine must actually serve the answer.
                    prop_assert_eq!(patched.pool_event, PoolEvent::Hit);
                    prop_assert_eq!(patched.artifact_builds.propagation_builds, 0);
                    prop_assert_eq!(patched.artifact_builds.influence_builds, 0);

                    let cold = GrainService::new();
                    cold.register_graph("live", g2.clone(), x2.clone()).unwrap();
                    let reference = cold.select(&request).unwrap();
                    assert_bit_identical(
                        &patched,
                        &reference,
                        &format!("{kernel:?} top_k={top_k} par={parallelism}"),
                    );
                }
            }
        }
    }

    /// Deleting a batch of edges and reinserting them (same weights) in a
    /// later delta returns the corpus to its original adjacency — and the
    /// twice-patched engine to bit-identical selections.
    #[test]
    fn delete_then_reinsert_round_trips(seed in 0u64..500, nodes in 30usize..60) {
        let (g, x) = corpus(nodes, seed);
        // Pick three live edges deterministically.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for v in 0..nodes as u32 {
            let (cols, _) = g.adjacency().row(v as usize);
            if let Some(&u) = cols.iter().find(|&&u| u > v) {
                edges.push((v, u));
                if edges.len() == 3 {
                    break;
                }
            }
        }
        if edges.len() < 3 {
            return Ok(()); // degenerate graph draw; skip the case
        }

        let request = SelectionRequest::new(
            "g",
            config_for(Kernel::RandomWalk { k: 2 }, 8, 0),
            Budget::Fixed(6),
        );
        let service = GrainService::new();
        service.register_graph("g", g.clone(), x).unwrap();
        let before = service.select(&request).unwrap();

        let mut del = GraphDelta::new();
        let mut re = GraphDelta::new();
        for &(v, u) in &edges {
            del = del.delete_edge(v, u);
            re = re.insert_edge(v, u); // generator edges carry weight 1.0
        }
        service.apply_update("g", &del).unwrap();
        let report = service.apply_update("g", &re).unwrap();
        prop_assert_eq!(report.epoch, 2);

        let restored = service.graph("g").unwrap();
        prop_assert_eq!(
            restored.adjacency(),
            g.adjacency(),
            "round-trip must restore the adjacency exactly"
        );
        let after = service.select(&request).unwrap();
        prop_assert_eq!(after.pool_event, PoolEvent::Hit);
        assert_bit_identical(&before, &after, "delete/reinsert round-trip");
    }
}

/// A feature-only delta leaves the transition untouched: no influence
/// rows are re-walked, yet propagation dirties the k-hop ball of the
/// overwritten rows and the selection matches a cold rebuild.
#[test]
fn feature_only_delta_skips_influence_rewalk() {
    let (g, x) = corpus(90, 11);
    let request = SelectionRequest::new(
        "g",
        config_for(Kernel::SymNorm { k: 2 }, 0, 0),
        Budget::Fixed(6),
    );
    let service = GrainService::new();
    service.register_graph("g", g.clone(), x.clone()).unwrap();
    service.select(&request).unwrap();

    let row: Vec<f32> = (0..FEATURE_DIM).map(|j| 0.9 - j as f32 * 0.1).collect();
    let delta = GraphDelta::new().set_features(17, row.clone());
    let report = service.apply_update("g", &delta).unwrap();
    assert_eq!(report.engines_patched(), 1);
    assert_eq!(report.patched[0].dirty_influence, 0);
    assert!(report.patched[0].dirty_propagation > 0);
    let patched = service.select(&request).unwrap();

    let mut x2 = x;
    x2.row_mut(17).copy_from_slice(&row);
    let cold = GrainService::new();
    cold.register_graph("g", g, x2).unwrap();
    let reference = cold.select(&request).unwrap();
    assert_bit_identical(&patched, &reference, "feature-only delta");
}

/// Epoch semantics under the scheduler: selections queued (and coalesced)
/// before an `apply_update` lands still complete, and everything that
/// *executes* after the flip is bit-identical to a cold service over the
/// mutated corpus — one consistent snapshot, never a torn mix.
#[test]
fn scheduled_selections_resolve_consistently_across_epoch_flip() {
    let (g, x) = corpus(80, 21);
    let service = std::sync::Arc::new(GrainService::new());
    service
        .register_graph("live", g.clone(), x.clone())
        .unwrap();
    let request = SelectionRequest::new(
        "live",
        config_for(Kernel::RandomWalk { k: 2 }, 8, 0),
        Budget::Fixed(7),
    );
    let scheduler = Scheduler::new(
        std::sync::Arc::clone(&service),
        SchedulerConfig {
            workers: 2,
            start_paused: true,
            ..SchedulerConfig::default()
        },
    );

    // Two identical submissions on epoch 0 coalesce onto one slot while
    // dispatch is paused; the update then flips the corpus to epoch 1
    // before any work runs.
    let first = scheduler.submit(request.clone()).unwrap();
    let twin = scheduler.submit(request.clone()).unwrap();
    let report = service
        .apply_update(
            "live",
            &GraphDelta::new().insert_edge(2, 71).delete_edge_first(&g),
        )
        .unwrap();
    assert_eq!(report.epoch, 1);
    // A post-flip submission keys on epoch 1 and must not join the
    // epoch-0 pair's slot.
    let late = scheduler.submit(request.clone()).unwrap();
    scheduler.resume();

    let a = first.wait().unwrap();
    let b = twin.wait().unwrap();
    let c = late.wait().unwrap();
    assert_eq!(
        scheduler.stats().coalesced,
        1,
        "only the epoch-0 twins coalesce"
    );

    // Everything executed after the flip: all three match the cold
    // oracle over the mutated corpus.
    let cold = GrainService::new();
    cold.register_graph(
        "live",
        (*service.graph("live").unwrap()).clone(),
        (*service.features("live").unwrap()).clone(),
    )
    .unwrap();
    let reference = cold.select(&request).unwrap();
    for (label, got) in [("first", &a), ("twin", &b), ("late", &c)] {
        assert_bit_identical(got, &reference, label);
    }
}

trait DeltaTestExt {
    fn delete_edge_first(self, g: &Graph) -> Self;
}

impl DeltaTestExt for GraphDelta {
    /// Deletes the first edge of node 0 (present in every generated
    /// corpus used here).
    fn delete_edge_first(self, g: &Graph) -> Self {
        let (cols, _) = g.adjacency().row(0);
        self.delete_edge(0, cols[0])
    }
}

//! Core-set selection: compress a fully labeled training pool to a small
//! subset that preserves accuracy — the paper's second scenario (§2.1,
//! Figures 5/8).
//!
//! Every method runs through one `GrainService`: the Grain adapter
//! answers its selection from the pooled engine, and the core-set
//! baselines (random, max-entropy, forgetting) distance on the same
//! engine's `X^(k)` artifact via the context built from it.
//!
//! ```text
//! cargo run -p grain --release --example coreset_compression
//! ```

use grain::prelude::*;
use grain::select::coreset::{ForgettingSelector, MaxEntropySelector};
use grain::select::grain_adapters::GrainBallSelector;
use grain::select::random::RandomSelector;

fn main() -> GrainResult<()> {
    let dataset = grain::data::synthetic::papers_like(4000, 11);
    let pool = &dataset.split.train;
    println!(
        "corpus {} — compressing a fully labeled pool of {} nodes",
        dataset.name,
        pool.len()
    );

    let train_cfg = TrainConfig::fast();
    // Reference: the full pool.
    let reference = train_and_test(&dataset, pool, &train_cfg);
    println!("reference accuracy (full pool): {:.1}%", reference * 100.0);

    let keep = pool.len() / 20; // 5% label rate

    // One service owns the corpus; one pooled engine backs the whole
    // compression lineup — Grain and the baselines read one artifact
    // store. The checkout is locked once for the whole campaign.
    let service = GrainService::new();
    service.register_graph("papers", dataset.graph.clone(), dataset.features.clone())?;
    let (checkout, _) = service.engine("papers", &GrainConfig::ball_d())?;
    let mut engine = checkout.lock();
    let ctx = SelectionContext::from_engine(&dataset, 1, &mut engine);
    let inner = TrainConfig {
        epochs: 25,
        patience: None,
        ..Default::default()
    };
    let mut methods: Vec<Box<dyn NodeSelector>> = vec![
        Box::new(GrainBallSelector::with_defaults()),
        Box::new(RandomSelector::new(5)),
        Box::new(MaxEntropySelector::new(ModelKind::Sgc { k: 2 }, 5).with_train_config(inner)),
        Box::new(ForgettingSelector::new(ModelKind::Sgc { k: 2 }, 5).with_train_config(inner)),
    ];
    println!("\nkeeping {} nodes (5% of the pool):", keep);
    for method in &mut methods {
        let subset = method
            .select_sweep_with(&ctx, &mut engine, &[keep])
            .pop()
            .expect("one budget in, one selection out");
        let acc = train_and_test(&dataset, &subset, &train_cfg);
        println!(
            "  {:<14} accuracy {:>5.1}%  (gap {:+.1} points)",
            method.name(),
            acc * 100.0,
            (acc - reference) * 100.0
        );
    }
    let stats = engine.stats();
    println!(
        "\n(shared pooled engine built propagation {}x for the entire lineup)",
        stats.propagation_builds
    );
    Ok(())
}

fn train_and_test(dataset: &Dataset, train_nodes: &[u32], cfg: &TrainConfig) -> f64 {
    let mut model = ModelKind::Sgc { k: 2 }.build(dataset, 0);
    model.train(&dataset.labels, train_nodes, &dataset.split.val, cfg);
    grain::gnn::metrics::accuracy(&model.predict(), &dataset.labels, &dataset.split.test)
}

//! An active-learning labeling campaign: compare Grain against the full
//! baseline lineup across growing budgets on one corpus — a miniature of
//! the paper's Figure 4 — with every method drawing from one
//! service-pooled artifact store.
//!
//! ```text
//! cargo run -p grain --release --example active_learning_campaign
//! ```

use grain::prelude::*;
use grain::select::age::AgeSelector;
use grain::select::degree::DegreeSelector;
use grain::select::grain_adapters::{GrainBallSelector, GrainNnSelector};
use grain::select::kcenter::KCenterGreedySelector;
use grain::select::random::RandomSelector;

fn main() -> GrainResult<()> {
    let dataset = grain::data::synthetic::citeseer_like(7);
    let c = dataset.num_classes;
    println!(
        "campaign on {} ({} classes, pool of {} candidates)",
        dataset.name,
        c,
        dataset.split.train.len()
    );

    let seed = 3u64;
    // One service owns the corpus; one pooled engine backs the campaign.
    // The context built from it hands the engine's X^(k) artifact to the
    // embedding-space baselines (KCG), while the Grain adapters answer
    // their sweeps straight from the same engine via select_sweep_with —
    // one artifact store for Grain and every baseline.
    let service = GrainService::new();
    service.register_graph("citeseer", dataset.graph.clone(), dataset.features.clone())?;
    let (checkout, _) = service.engine("citeseer", &GrainConfig::ball_d())?;
    let mut engine = checkout.lock();
    let ctx = SelectionContext::from_engine(&dataset, seed, &mut engine);

    let inner_cfg = TrainConfig {
        epochs: 30,
        patience: None,
        ..Default::default()
    };
    let mut methods: Vec<Box<dyn NodeSelector>> = vec![
        Box::new(GrainBallSelector::with_defaults()),
        Box::new(GrainNnSelector::with_defaults()),
        Box::new(
            AgeSelector::new(ModelKind::Gcn { hidden: 64 }, seed).with_train_config(inner_cfg),
        ),
        Box::new(RandomSelector::new(seed)),
        Box::new(DegreeSelector::new()),
        Box::new(KCenterGreedySelector::new(seed)),
    ];

    // One sweep call per method: prefix-consistent baselines select once
    // at the largest budget and slice prefixes, while the Grain adapters
    // answer every budget from the pooled SelectionEngine (propagation,
    // influence rows, and the activation index are built a single time
    // across the *whole lineup*).
    let budgets = [2 * c, 6 * c, 12 * c, 20 * c];
    print!("{:<16}", "method");
    for b in budgets {
        print!("  B={b:<5}");
    }
    println!();
    for method in &mut methods {
        let sweep = method.select_sweep_with(&ctx, &mut engine, &budgets);
        print!("{:<16}", method.name());
        for selection in &sweep {
            let mut model = ModelKind::Gcn { hidden: 64 }.build(&dataset, seed);
            model.train(
                &dataset.labels,
                selection,
                &dataset.split.val,
                &TrainConfig::fast(),
            );
            let acc = grain::gnn::metrics::accuracy(
                &model.predict(),
                &dataset.labels,
                &dataset.split.test,
            );
            print!("  {:<7.1}", acc * 100.0);
        }
        println!();
    }
    let stats = engine.stats();
    println!(
        "\n(accuracy %, one seed — the grain-bench harness averages several; \
         shared engine built propagation {}x, influence rows {}x, \
         activation index {}x for the entire lineup)",
        stats.propagation_builds, stats.influence_builds, stats.index_builds
    );
    Ok(())
}

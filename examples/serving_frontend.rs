//! The serving front-end end to end: a `Scheduler` over a `GrainService`
//! driven by a mixed open-loop workload — duplicate storms that coalesce,
//! tight deadlines that get shed, priorities that jump the queue, a
//! cancellation wave (explicit `Ticket::cancel` plus mid-run deadlines
//! degrading to anytime prefixes), and a tiny-queue scheduler
//! demonstrating admission control.
//!
//! ```text
//! cargo run -p grain --release --example serving_frontend
//! ```

use grain::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> GrainResult<()> {
    let n = 2_000;
    println!("generating a papers-like corpus with {n} nodes ...");
    let dataset = grain::data::synthetic::papers_like(n, 99);

    let service = Arc::new(GrainService::new());
    service.register_graph("papers", dataset.graph.clone(), dataset.features.clone())?;

    // ------------------------------------------------------------------
    // 1. A duplicate storm: the dominant shape of influence-serving
    //    traffic. Start paused so the whole burst is staged, then let the
    //    workers loose — the scheduler runs ONE selection and fans it out.
    // ------------------------------------------------------------------
    let scheduler = Scheduler::new(
        Arc::clone(&service),
        SchedulerConfig {
            start_paused: true,
            ..SchedulerConfig::default()
        },
    );
    let popular = SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(20))
        .with_candidates(dataset.split.train.clone());
    let storm = 32;
    let tickets: Vec<Ticket> = (0..storm)
        .map(|_| scheduler.submit(popular.clone()))
        .collect::<GrainResult<_>>()?;
    println!(
        "\n[storm] staged {storm} identical requests -> queue depth {}",
        scheduler.queue_depth()
    );
    let t0 = Instant::now();
    scheduler.resume();
    let mut joiners = 0;
    for ticket in tickets {
        if ticket.wait()?.pool_event == PoolEvent::CoalescedSelection {
            joiners += 1;
        }
    }
    let stats = scheduler.stats();
    println!(
        "[storm] {storm} reports in {:.2?}: {} selection(s) executed, {} coalesce joiners \
         ({} selections saved)",
        t0.elapsed(),
        stats.selections,
        joiners,
        stats.saved_selections(),
    );

    // ------------------------------------------------------------------
    // 2. A mixed open-loop wave: three artifact fingerprints, duplicate
    //    traffic, a priority request, and a deadline too tight to make it
    //    through a busy queue.
    // ------------------------------------------------------------------
    let base = GrainConfig::ball_d();
    let mut wave = Vec::new();
    for (label, config) in [
        ("base", base),
        (
            "theta=0.4",
            GrainConfig {
                theta: ThetaRule::RelativeToRowMax(0.4),
                ..base
            },
        ),
        ("nn-d", GrainConfig::nn_d()),
    ] {
        for budget in [10usize, 20] {
            // Each (config, budget) arrives three times: open-loop
            // clients rarely know they are duplicates of each other.
            for _ in 0..3 {
                wave.push((
                    label,
                    SelectionRequest::new("papers", config, Budget::Fixed(budget))
                        .with_candidates(dataset.split.train.clone()),
                ));
            }
        }
    }
    scheduler.pause(); // stage the wave like a traffic spike
    let mut wave_tickets = Vec::new();
    for (i, (label, request)) in wave.iter().enumerate() {
        let scheduled = ScheduledRequest::new(request.clone())
            // Every fifth request is latency-critical...
            .with_priority(if i % 5 == 0 { 9 } else { 0 })
            .with_deadline_in(Duration::from_secs(120));
        wave_tickets.push((label, scheduler.submit(scheduled)?));
    }
    // ...and one request carries a deadline that expires while queued.
    let doomed = scheduler.submit(
        ScheduledRequest::new(popular.clone().with_seed(1)) // distinct seed: no coalescing
            .with_deadline_in(Duration::from_millis(5)),
    )?;
    std::thread::sleep(Duration::from_millis(20));
    let t1 = Instant::now();
    scheduler.resume();
    let mut answered = 0;
    for (_, ticket) in wave_tickets {
        ticket.wait()?;
        answered += 1;
    }
    match doomed.wait() {
        Err(GrainError::DeadlineExceeded { stage }) => {
            println!("[wave ] doomed request shed as promised ({stage:?})");
        }
        other => println!("[wave ] doomed request unexpectedly answered: {other:?}"),
    }
    let stats = scheduler.stats();
    println!(
        "[wave ] {answered} reports in {:.2?}; totals: {} submissions -> {} executed, \
         {} coalesced, {} shed, {} dispatch groups",
        t1.elapsed(),
        stats.submissions(),
        stats.selections,
        stats.coalesced,
        stats.shed_deadline,
        stats.dispatch_groups,
    );
    println!(
        "[pool ] {:?} over {} engines",
        service.pool_stats(),
        service.pool().len()
    );

    // ------------------------------------------------------------------
    // 3. A cancellation wave: callers hang up, deadlines trip mid-run.
    //    Explicit cancels resolve their tickets immediately (and a
    //    coalesced sibling keeps the run alive — cancel is refcounted);
    //    a mid-run deadline under OnDeadline::Partial degrades to an
    //    anytime prefix instead of an error.
    // ------------------------------------------------------------------
    scheduler.pause();
    // Two callers ask for the same fresh selection; one hangs up.
    let fresh = popular.clone().with_seed(7);
    let keeper = scheduler.submit(fresh.clone())?;
    let quitter = scheduler.submit(fresh)?;
    quitter.cancel();
    // One caller cancels a selection nobody else wants: it never runs.
    let lonely = scheduler.submit(popular.clone().with_seed(8))?;
    lonely.cancel();
    // And one caller would rather have *something* by its deadline than
    // an error: a budget-500 selection under a deadline sized for less.
    let impatient = scheduler.submit(
        ScheduledRequest::new(
            SelectionRequest::new("papers", base, Budget::Fixed(500))
                .with_candidates(dataset.split.train.clone()),
        )
        .with_deadline_in(Duration::from_millis(2))
        .with_on_deadline(OnDeadline::Partial),
    )?;
    let t2 = Instant::now();
    scheduler.resume();
    let kept = keeper.wait()?;
    println!(
        "\n[cancl] refcounted: quitter cancelled, keeper still got its {} nodes",
        kept.outcome().selected.len()
    );
    match lonely.wait() {
        Err(GrainError::Cancelled) => {
            println!("[cancl] lonely ticket resolved Cancelled; its run was skipped entirely")
        }
        other => println!("[cancl] lonely ticket unexpectedly answered: {other:?}"),
    }
    match impatient.wait() {
        Ok(report) if report.is_partial() => println!(
            "[cancl] impatient caller got an anytime prefix: {} of 500 nodes in {:.2?}",
            report.outcome().selected.len(),
            t2.elapsed(),
        ),
        Ok(report) => println!(
            "[cancl] impatient caller beat its deadline: all {} nodes",
            report.outcome().selected.len()
        ),
        Err(e) => println!("[cancl] impatient caller's trip landed pre-greedy: {e}"),
    }
    let stats = scheduler.stats();
    println!(
        "[cancl] stats: {} cancelled, {} partial, {} panicked",
        stats.cancelled, stats.partial, stats.panicked
    );

    // ------------------------------------------------------------------
    // 4. Admission control: a queue of capacity 2 sheds a burst fast
    //    instead of letting latency grow without bound.
    // ------------------------------------------------------------------
    let tiny = Scheduler::new(
        Arc::clone(&service),
        SchedulerConfig {
            queue_capacity: 2,
            start_paused: true,
            ..SchedulerConfig::default()
        },
    );
    let mut admitted = 0;
    let mut rejected = 0;
    for budget in 5..25 {
        let request = SelectionRequest::new("papers", base, Budget::Fixed(budget))
            .with_candidates(dataset.split.train.clone());
        match tiny.submit(request) {
            Ok(_) => admitted += 1, // tickets dropped: abandoned waiters are fine
            Err(GrainError::QueueFull { .. }) => rejected += 1,
            Err(e) => return Err(e),
        }
    }
    tiny.resume();
    println!(
        "\n[admit] capacity-2 queue under a 20-request burst: {admitted} admitted, \
         {rejected} rejected typed QueueFull (callers back off instead of queueing forever)"
    );
    Ok(())
}

//! Quickstart: stand up a `GrainService`, request a selection, and train
//! a GCN on the returned labels.
//!
//! ```text
//! cargo run -p grain --release --example quickstart
//! ```

use grain::prelude::*;

fn main() -> GrainResult<()> {
    // 1. A graph dataset. Here: a synthetic citation-style corpus with
    //    2708 nodes and 7 classes (a stand-in for Cora; see grain::data).
    let dataset = grain::data::synthetic::cora_like(42);
    println!(
        "dataset: {} — {} nodes, {} edges, {} classes",
        dataset.name,
        dataset.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );

    // 2. Register the corpus with a service once; every request shares the
    //    pooled engines' cached artifacts from then on.
    let service = GrainService::new();
    service.register_graph("cora", dataset.graph.clone(), dataset.features.clone())?;

    // 3. Grain (ball-D) with the paper's Appendix A.4 defaults: request a
    //    labeling budget of B = 2C nodes from the training pool. Grain is
    //    model-free: no GNN is trained during selection.
    let budget = dataset.budget(2);
    let request = SelectionRequest::new("cora", GrainConfig::ball_d(), Budget::Fixed(budget))
        .with_candidates(dataset.split.train.clone());
    let report = service.select(&request)?;
    let outcome = report.outcome().clone();
    println!(
        "selected {} nodes in {:.1?} (sigma(S) activates {} nodes, {} gain evaluations, pool {:?})",
        outcome.selected.len(),
        outcome.timings.total,
        outcome.sigma.len(),
        outcome.evaluations,
        report.pool_event,
    );

    // The same request again is a pool hit answered from warm artifacts —
    // bit-identical, at a fraction of the cost.
    let warm = service.select(&request)?;
    println!(
        "warm repeat: fully_warm = {}, total {:.1?} (vs cold {:.1?})",
        warm.fully_warm(),
        warm.outcome().timings.total,
        outcome.timings.total,
    );

    // 4. Train a 2-layer GCN on the selected labels and evaluate.
    let mut model = ModelKind::Gcn { hidden: 64 }.build(&dataset, 0);
    let train_report = model.train(
        &dataset.labels,
        &outcome.selected,
        &dataset.split.val,
        &TrainConfig::default(),
    );
    let test_acc =
        grain::gnn::metrics::accuracy(&model.predict(), &dataset.labels, &dataset.split.test);
    println!(
        "GCN trained {} epochs (best val {:.1}%) — test accuracy {:.1}%",
        train_report.epochs_run,
        train_report.best_val_accuracy * 100.0,
        test_acc * 100.0
    );

    // 5. Compare against random selection with the same budget.
    let mut random = grain::select::random::RandomSelector::new(7);
    let ctx = SelectionContext::new(&dataset, 7);
    let random_pick = grain::select::NodeSelector::select(&mut random, &ctx, budget);
    let mut model_r = ModelKind::Gcn { hidden: 64 }.build(&dataset, 0);
    model_r.train(
        &dataset.labels,
        &random_pick,
        &dataset.split.val,
        &TrainConfig::default(),
    );
    let random_acc =
        grain::gnn::metrics::accuracy(&model_r.predict(), &dataset.labels, &dataset.split.test);
    println!(
        "random selection with the same budget: {:.1}% (grain advantage {:+.1} points)",
        random_acc * 100.0,
        (test_acc - random_acc) * 100.0
    );
    Ok(())
}

//! Quickstart: select nodes to label with Grain and train a GCN on them.
//!
//! ```text
//! cargo run -p grain --release --example quickstart
//! ```

use grain::prelude::*;

fn main() {
    // 1. A graph dataset. Here: a synthetic citation-style corpus with
    //    2708 nodes and 7 classes (a stand-in for Cora; see grain::data).
    let dataset = grain::data::synthetic::cora_like(42);
    println!(
        "dataset: {} — {} nodes, {} edges, {} classes",
        dataset.name,
        dataset.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );

    // 2. Grain (ball-D) with the paper's Appendix A.4 defaults: select a
    //    labeling budget of B = 2C nodes from the training pool. Grain is
    //    model-free: no GNN is trained during selection.
    let budget = dataset.budget(2);
    let selector = GrainSelector::ball_d();
    let outcome = selector.select(
        &dataset.graph,
        &dataset.features,
        &dataset.split.train,
        budget,
    );
    println!(
        "selected {} nodes in {:.1?} (sigma(S) activates {} nodes, {} gain evaluations)",
        outcome.selected.len(),
        outcome.timings.total,
        outcome.sigma.len(),
        outcome.evaluations,
    );

    // 3. Train a 2-layer GCN on the selected labels and evaluate.
    let mut model = ModelKind::Gcn { hidden: 64 }.build(&dataset, 0);
    let report = model.train(
        &dataset.labels,
        &outcome.selected,
        &dataset.split.val,
        &TrainConfig::default(),
    );
    let test_acc =
        grain::gnn::metrics::accuracy(&model.predict(), &dataset.labels, &dataset.split.test);
    println!(
        "GCN trained {} epochs (best val {:.1}%) — test accuracy {:.1}%",
        report.epochs_run,
        report.best_val_accuracy * 100.0,
        test_acc * 100.0
    );

    // 4. Compare against random selection with the same budget.
    let mut random = grain::select::random::RandomSelector::new(7);
    let ctx = SelectionContext::new(&dataset, 7);
    let random_pick = grain::select::NodeSelector::select(&mut random, &ctx, budget);
    let mut model_r = ModelKind::Gcn { hidden: 64 }.build(&dataset, 0);
    model_r.train(
        &dataset.labels,
        &random_pick,
        &dataset.split.val,
        &TrainConfig::default(),
    );
    let random_acc =
        grain::gnn::metrics::accuracy(&model_r.predict(), &dataset.labels, &dataset.split.test);
    println!(
        "random selection with the same budget: {:.1}% (grain advantage {:+.1} points)",
        random_acc * 100.0,
        (test_acc - random_acc) * 100.0
    );
}

//! The network edge end to end in one process: an `EdgeServer` bound on
//! a loopback port, tenants with 10:1 weighted-fair shares and real
//! token buckets, clients speaking the framed protocol over real
//! sockets — including the contract that makes the wire trustworthy
//! (bit-identity against an in-process submission), a rate-limit
//! refusal that leaves the connection open, and a disconnect that
//! cancels the abandoned work.
//!
//! ```text
//! cargo run -p grain --release --example network_edge
//! ```

use grain::core::edge::proto::WireReport;
use grain::core::edge::{EdgeError, RequestOptions};
use grain::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1_000;
    println!("generating a papers-like corpus with {n} nodes ...");
    let dataset = grain::data::synthetic::papers_like(n, 99);

    let service = Arc::new(GrainService::new());
    service.register_graph("papers", dataset.graph.clone(), dataset.features.clone())?;
    let candidates = dataset.split.train.clone();
    let request = |budget: usize, seed: u64| {
        SelectionRequest::new("papers", GrainConfig::ball_d(), Budget::Fixed(budget))
            .with_candidates(candidates.clone())
            .with_seed(seed)
    };

    // ------------------------------------------------------------------
    // 1. Bind the edge. Tenants are declared up front: a weight, a
    //    token-bucket rate, optionally a secret.
    // ------------------------------------------------------------------
    let mut server = EdgeServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service),
        EdgeConfig {
            max_connections: 16,
            tenants: vec![
                TenantSpec::open("gold", 10).with_rate(4000.0, 400.0),
                TenantSpec::open("bronze", 1).with_rate(5.0, 2.0),
            ],
            ..EdgeConfig::default()
        },
    )?;
    let addr = server.local_addr();
    println!("edge serving on {addr} (tenants: gold 10x, bronze 1x)");

    // ------------------------------------------------------------------
    // 2. The wire contract: a response served over the socket is
    //    bit-identical to the same request submitted in-process.
    // ------------------------------------------------------------------
    let oracle = service.select(&request(20, 1))?;
    let mut gold = EdgeClient::connect(addr, "gold", "")?;
    println!(
        "gold admitted: weight {}, {}/s burst {}",
        gold.ack().weight,
        gold.ack().rate_per_sec,
        gold.ack().burst
    );
    let wire = gold.request(request(20, 1), RequestOptions::default())?;
    assert_eq!(
        wire.outcomes,
        WireReport::from_report(wire.request_id, &oracle).outcomes,
        "wire and in-process answers must be bit-identical"
    );
    println!(
        "wire response: {} nodes selected, bit-identical to the in-process oracle",
        wire.outcomes[0].selected.len()
    );

    // ------------------------------------------------------------------
    // 3. Rate limiting: bronze's bucket holds 2 tokens. The refusals
    //    are typed error frames; the connection stays open and serves
    //    again once the bucket refills.
    // ------------------------------------------------------------------
    let mut bronze = EdgeClient::connect(addr, "bronze", "")?;
    let mut served = 0;
    let mut refused = 0;
    for seed in 0..5 {
        match bronze.request(request(10, seed), RequestOptions::default()) {
            Ok(_) => served += 1,
            Err(EdgeError::Remote { code, .. }) => {
                assert_eq!(code, grain::core::edge::proto::CODE_RATE_LIMITED);
                refused += 1;
            }
            Err(other) => return Err(other.into()),
        }
    }
    println!("bronze burst: {served} served, {refused} rate-limited (typed, connection intact)");
    std::thread::sleep(Duration::from_millis(500));
    bronze.request(request(10, 9), RequestOptions::default())?;
    println!("bronze after refill: served on the same connection");

    // ------------------------------------------------------------------
    // 4. Disconnect-triggered cancellation: stage work behind a paused
    //    queue, vanish, and the server discards it without running a
    //    single selection.
    // ------------------------------------------------------------------
    server.scheduler().pause();
    let mut quitter = EdgeClient::connect(addr, "gold", "")?;
    for seed in 100..103 {
        quitter.send(request(15, seed), RequestOptions::default())?;
    }
    while server.scheduler().queue_depth() < 3 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let selections_before = server.scheduler().stats().selections;
    quitter.abandon();
    while server.scheduler().stats().cancelled < 3 {
        std::thread::sleep(Duration::from_millis(2));
    }
    server.scheduler().resume();
    while !server.scheduler().is_idle() {
        std::thread::sleep(Duration::from_millis(2));
    }
    println!(
        "disconnect cancelled 3 queued requests; selections run for them: {}",
        server.scheduler().stats().selections - selections_before
    );

    // ------------------------------------------------------------------
    // 5. The ledger: per-tenant counters the scheduler kept while the
    //    edge served.
    // ------------------------------------------------------------------
    for t in server.tenant_stats() {
        println!(
            "tenant {:>6} (w{:>2}): admitted {:>3} completed {:>3} cancelled {:>3} p99 {:?}",
            t.tenant, t.weight, t.admitted, t.completed, t.cancelled, t.p99
        );
    }
    let stats = server.stats();
    println!(
        "edge: {} connections, {} requests served, {} rate-limited, {} disconnect-cancels",
        stats.connections_accepted,
        stats.requests_served,
        stats.rate_limited,
        stats.disconnect_cancels
    );
    server.shutdown();
    Ok(())
}

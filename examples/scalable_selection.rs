//! Scalable selection on a large graph with §3.4 candidate pruning —
//! the ogbn-papers100M regime in miniature (Figure 6b/9).
//!
//! All three pruning variants go through one `GrainService`: they share
//! an artifact fingerprint (pruning is a greedy-stage field), so a single
//! pooled engine answers every request and the heavy propagation /
//! influence stages are paid exactly once.
//!
//! ```text
//! cargo run -p grain --release --example scalable_selection
//! ```

use grain::prelude::*;

fn main() -> GrainResult<()> {
    // A 100k-node papers-like corpus (adjust the size to taste).
    let n = 100_000;
    println!("generating papers-like corpus with {n} nodes ...");
    let t0 = std::time::Instant::now();
    let dataset = grain::data::synthetic::papers_like(n, 77);
    println!(
        "generated in {:.1?}: {} edges, {} classes",
        t0.elapsed(),
        dataset.graph.num_edges(),
        dataset.num_classes
    );

    let service = GrainService::new();
    service.register_graph("papers", dataset.graph.clone(), dataset.features.clone())?;

    let budget = dataset.budget(20);
    let variants = [
        ("no pruning", None),
        (
            "degree top-20%",
            Some(PruneStrategy::Degree { keep_fraction: 0.2 }),
        ),
        (
            "walk-mass top-20%",
            Some(PruneStrategy::WalkMass { keep_fraction: 0.2 }),
        ),
    ];
    // One batched submission: all three variants share an artifact
    // fingerprint (pruning is a greedy-stage field), so the batch routes
    // them to a single warm engine and runs them back to back — answers
    // come back in request order.
    let requests: Vec<SelectionRequest> = variants
        .iter()
        .map(|(_, prune)| {
            let config = GrainConfig {
                prune: *prune,
                ..GrainConfig::ball_d()
            };
            SelectionRequest::new("papers", config, Budget::Fixed(budget))
                .with_candidates(dataset.split.train.clone())
        })
        .collect();
    let reports = service.submit_batch(&requests);
    for ((label, _), report) in variants.iter().zip(reports) {
        let report = report?;
        let outcome = report.outcome();
        println!(
            "grain(ball-d) [{label:<18}] total {:>8.2?}  \
             (propagation {:.2?}, influence {:.2?}, indexing {:.2?}, greedy {:.2?}; \
             pool {} -> {} candidates, sigma {}, engine pool: {:?})",
            outcome.timings.total,
            outcome.timings.propagation,
            outcome.timings.influence,
            outcome.timings.indexing,
            outcome.timings.greedy,
            dataset.split.train.len(),
            outcome.candidates_after_prune,
            outcome.sigma.len(),
            report.pool_event,
        );
    }
    let stats = service.pool_stats();
    println!(
        "\nengine pool after the scan: {} hit(s), {} cold miss(es) — the \
         pruning variants shared one engine, so propagation ran once.",
        stats.hits, stats.cold_misses
    );
    println!(
        "Learning-based AL would retrain a GNN {} times on this graph to select \
         the same budget — the cost Grain's model-free design removes.",
        20
    );
    Ok(())
}

//! Streaming maintenance end to end: a live corpus absorbing an
//! open-loop churn stream while selections keep serving warm.
//!
//! Each round applies a `GraphDelta` (edge toggles, occasionally a
//! feature overwrite) through `GrainService::apply_update` and prints
//! what the epoch flip cost: how far the dirty frontier spread, which
//! resident engines were patched vs. skipped, and the per-stage repair
//! timings. Between rounds a selection lands on the *new* epoch fully
//! warm — no propagation, influence, or index rebuild.
//!
//! The stream is net-zero (every inserted edge is later deleted), so the
//! final corpus is the original one — and the closing selection is
//! bit-identical to the opening baseline, the streaming contract made
//! visible.
//!
//! ```text
//! cargo run -p grain --release --example live_graph
//! ```

use grain::prelude::*;
use std::time::Instant;

/// `count` node pairs absent from `g`, derived from a hash counter —
/// the churn set the stream toggles on and off.
fn absent_pairs(g: &Graph, count: usize, salt: u64) -> Vec<(u32, u32)> {
    let n = g.num_nodes() as u64;
    let mut pairs = Vec::with_capacity(count);
    let mut i: u64 = salt;
    while pairs.len() < count {
        let a = (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) % n;
        let b = (i.wrapping_mul(0xc2b2_ae3d_27d4_eb4f) >> 19) % n;
        i += 1;
        let (a, b) = (a.min(b) as u32, a.max(b) as u32);
        if a != b && !g.has_edge(a as usize, b) && !pairs.contains(&(a, b)) {
            pairs.push((a, b));
        }
    }
    pairs
}

fn main() -> GrainResult<()> {
    let n = 4_000;
    println!("generating a papers-like corpus with {n} nodes ...");
    let dataset = grain::data::synthetic::papers_like(n, 99);

    let service = GrainService::new();
    service.register_graph("live", dataset.graph.clone(), dataset.features.clone())?;

    // Two resident fingerprints over the same corpus: both get patched on
    // every epoch flip. A third, triangle-induced engine demonstrates the
    // one artifact family that must rebuild cold instead.
    let ball = SelectionRequest::new("live", GrainConfig::ball_d(), Budget::Fixed(20))
        .with_candidates(dataset.split.train.clone());
    let truncated = SelectionRequest::new(
        "live",
        GrainConfig {
            influence_row_top_k: 16,
            ..GrainConfig::ball_d()
        },
        Budget::Fixed(20),
    )
    .with_candidates(dataset.split.train.clone());
    let triangle = SelectionRequest::new(
        "live",
        GrainConfig {
            kernel: Kernel::TriangleIa { k: 2 },
            ..GrainConfig::ball_d()
        },
        Budget::Fixed(20),
    )
    .with_candidates(dataset.split.train.clone());
    let baseline = service.select(&ball)?;
    service.select(&truncated)?;
    service.select(&triangle)?;
    println!(
        "warmed {} engines at epoch {}; baseline selected {:?}...\n",
        service.pool().len(),
        service.epoch("live")?,
        &baseline.outcome().selected[..4.min(baseline.outcome().selected.len())],
    );

    // ------------------------------------------------------------------
    // The churn stream: five rounds of edge toggles (insert a batch, later
    // delete it) plus one feature overwrite, interleaved with selections.
    // ------------------------------------------------------------------
    let graph = service.graph("live")?;
    let batches: Vec<Vec<(u32, u32)>> = (0..2)
        .map(|round| absent_pairs(&graph, 8 << round, 1000 * round as u64 + 7))
        .collect();
    let mut updates = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        let insert = batch
            .iter()
            .fold(GraphDelta::new(), |d, &(a, b)| d.insert_edge(a, b));
        updates.push((format!("insert {:>3} edges", batch.len()), insert));
        if i == 0 {
            // A feature correction rides along mid-stream: new row for one
            // node, reverted before the stream ends.
            let old_row = dataset.features.row(17).to_vec();
            let new_row: Vec<f32> = old_row.iter().map(|v| v * 0.5 + 0.1).collect();
            updates.push((
                "overwrite features".to_string(),
                GraphDelta::new().set_features(17, new_row),
            ));
            updates.push((
                "revert features".to_string(),
                GraphDelta::new().set_features(17, old_row),
            ));
        }
    }
    for batch in batches.iter().rev() {
        let delete = batch
            .iter()
            .fold(GraphDelta::new(), |d, &(a, b)| d.delete_edge(a, b));
        updates.push((format!("delete {:>3} edges", batch.len()), delete));
    }

    for (label, delta) in &updates {
        let t = Instant::now();
        let report = service.apply_update("live", delta)?;
        let widest = report.max_dirty_propagation();
        println!(
            "[epoch {:>2} -> {:>2}] {label}: {} engine(s) patched \
             ({} triangle rebuilds deferred), widest dirty frontier {widest} \
             rows, {:.2?}",
            report.from_epoch,
            report.epoch,
            report.engines_patched(),
            report.engines_skipped_triangle,
            t.elapsed(),
        );
        for patch in &report.patched {
            println!(
                "               dirty prop/influence {:>4}/{:<4} | stages: \
                 T {:.1?}  P {:.1?}  E {:.1?}  I {:.1?}  X {:.1?}",
                patch.dirty_propagation,
                patch.dirty_influence,
                patch.timings.transition,
                patch.timings.propagation,
                patch.timings.embedding,
                patch.timings.influence,
                patch.timings.index,
            );
        }
        // Patched engines serve the new epoch without rebuilding any of
        // the heavy artifacts (the lazily rebuilt diversity ball lists are
        // the one deliberate exception).
        let warm = service.select(&ball)?;
        assert_eq!(warm.pool_event, PoolEvent::Hit);
        assert_eq!(warm.artifact_builds.propagation_builds, 0);
        assert_eq!(warm.artifact_builds.influence_builds, 0);
        assert_eq!(warm.artifact_builds.index_builds, 0);
    }

    // ------------------------------------------------------------------
    // Net-zero stream: the corpus is back at its original adjacency and
    // features, so a fresh selection reproduces the opening baseline
    // bit for bit — patched artifacts are byte-identical to cold ones.
    // ------------------------------------------------------------------
    let closing = service.select(&ball)?;
    assert_eq!(
        closing.outcome().selected,
        baseline.outcome().selected,
        "net-zero churn must reproduce the baseline selection"
    );
    assert_eq!(
        closing.outcome().objective_trace,
        baseline.outcome().objective_trace,
        "objective trace must match bit for bit"
    );
    println!(
        "\nafter {} epoch flips the net-zero stream reproduced the baseline \
         selection bit-for-bit ({} nodes, identical objective trace)",
        service.epoch("live")?,
        closing.outcome().selected.len(),
    );
    println!(
        "pool: {:?} over {} engines",
        service.pool_stats(),
        service.pool().len()
    );
    Ok(())
}
